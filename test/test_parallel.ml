(* The omn_parallel pool and chunking helpers: determinism (results in
   input order regardless of domain count), exception propagation, pool
   reuse, and the tail-recursion guarantee of Chunk.split_at — the old
   non-tail split_at in Delay_cdf overflowed the stack on large
   checkpoint chunks. *)

module Pool = Omn_parallel.Pool
module Chunk = Omn_parallel.Chunk

let map_matches_sequential () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check int) "domains" 4 (Pool.domains pool);
      (* Uneven per-item cost exercises the work-stealing order. *)
      let xs = Array.init 500 (fun i -> i) in
      let f x =
        let acc = ref 0 in
        for j = 0 to (x mod 17) * 100 do
          acc := !acc + j
        done;
        (x * x) + (!acc * 0) + x
      in
      let expected = Array.map f xs in
      Alcotest.(check (array int)) "map = Array.map" expected (Pool.map pool f xs);
      (* A pool is reusable: repeated maps on the same workers agree. *)
      for _ = 1 to 5 do
        Alcotest.(check (array int)) "reused pool" expected (Pool.map pool f xs)
      done;
      Alcotest.(check (array int)) "empty input" [||] (Pool.map pool f [||]);
      Alcotest.(check (array int)) "singleton" [| f 3 |] (Pool.map pool f [| 3 |]))

let exceptions_propagate () =
  Pool.with_pool ~domains:3 (fun pool ->
      (match Pool.map pool (fun x -> if x = 57 then failwith "boom" else x) (Array.init 100 Fun.id) with
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
      | _ -> Alcotest.fail "exception in worker not re-raised on caller");
      (* The pool survives a failed map. *)
      Alcotest.(check (array int)) "pool alive after failure" [| 2; 3 |]
        (Pool.map pool succ [| 1; 2 |]))

let shutdown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  Alcotest.(check (array int)) "map before shutdown" [| 2; 3; 4 |]
    (Pool.map pool succ [| 1; 2; 3 |]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (match Pool.create ~domains:0 () with
  | exception Invalid_argument _ -> ()
  | p ->
    Pool.shutdown p;
    Alcotest.fail "domains = 0 accepted")

(* Regression: mapping on a shut-down pool used to enqueue jobs no
   worker would ever take and hang; now it raises immediately. *)
let map_after_shutdown_raises () =
  let pool = Pool.create ~domains:3 () in
  Pool.shutdown pool;
  match Pool.map pool succ [| 1; 2; 3 |] with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "message names shutdown" true
      (String.length msg > 0 && Util.contains_substring msg "shut down")
  | _ -> Alcotest.fail "map on a shut-down pool did not raise"

(* Regression: a nested map on the same pool deadlocked once every
   worker was busy; now it is detected from both the caller domain and
   the worker domains. Nesting on a different pool stays legal. *)
let nested_map_detected () =
  Pool.with_pool ~domains:2 (fun pool ->
      let saw = Atomic.make 0 in
      let f _ =
        match Pool.map pool succ [| 1; 2; 3 |] with
        | exception Invalid_argument _ ->
          Atomic.incr saw;
          0
        | _ -> 1
      in
      let results = Pool.map pool f (Array.init 8 Fun.id) in
      Alcotest.(check (array int)) "every nested map rejected" (Array.make 8 0) results;
      Alcotest.(check int) "all sites raised" 8 (Atomic.get saw);
      (* the pool is still usable afterwards *)
      Alcotest.(check (array int)) "pool alive" [| 2; 3 |] (Pool.map pool succ [| 1; 2 |]);
      (* nesting on a different pool is fine *)
      Pool.with_pool ~domains:2 (fun inner ->
          let g x = Array.fold_left ( + ) 0 (Pool.map inner (fun y -> x + y) [| 1; 2; 3 |]) in
          Alcotest.(check (array int)) "different pool allowed" [| 6; 9 |]
            (Pool.map pool g [| 0; 1 |])))

let map_supervised_isolates_failures () =
  Pool.with_pool ~domains:3 (fun pool ->
      let f x = if x mod 5 = 2 then failwith (string_of_int x) else x * x in
      let results = Pool.map_supervised pool f (Array.init 20 Fun.id) in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v ->
            Alcotest.(check bool) "slot not poisoned" true (i mod 5 <> 2);
            Alcotest.(check int) "slot value" (i * i) v
          | Error (Failure msg) ->
            Alcotest.(check bool) "failing slot" true (i mod 5 = 2);
            Alcotest.(check string) "failure payload" (string_of_int i) msg
          | Error e -> raise e)
        results)

let map_list_and_reduce () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check (list int)) "map_list" [ 2; 3; 4 ] (Pool.map_list pool succ [ 1; 2; 3 ]);
      let total =
        Pool.map_reduce pool ~map:(fun x -> 2 * x) ~reduce:( + ) ~init:0 (Array.init 100 Fun.id)
      in
      Alcotest.(check int) "map_reduce" 9900 total)

let run_dispatch () =
  let xs = Array.init 50 (fun i -> i) in
  let f x = (3 * x) + 1 in
  let expected = Array.map f xs in
  Alcotest.(check (array int)) "run sequential" expected (Pool.run f xs);
  Alcotest.(check (array int)) "run ~domains:2" expected (Pool.run ~domains:2 f xs);
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check (array int)) "run ~pool" expected (Pool.run ~pool f xs))

let spec_parsing () =
  Alcotest.(check bool) "auto" true (Pool.spec_of_string "auto" = Some Pool.Auto);
  Alcotest.(check bool) "4" true (Pool.spec_of_string "4" = Some (Pool.Fixed 4));
  Alcotest.(check bool) "0 rejected" true (Pool.spec_of_string "0" = None);
  Alcotest.(check bool) "-2 rejected" true (Pool.spec_of_string "-2" = None);
  Alcotest.(check bool) "garbage rejected" true (Pool.spec_of_string "fast" = None);
  Alcotest.(check int) "resolve fixed" 3 (Pool.resolve (Pool.Fixed 3));
  Alcotest.(check bool) "resolve auto >= 1" true (Pool.resolve Pool.Auto >= 1);
  Alcotest.(check string) "to_string auto" "auto" (Pool.spec_to_string Pool.Auto);
  Alcotest.(check string) "to_string fixed" "7" (Pool.spec_to_string (Pool.Fixed 7));
  match Pool.resolve (Pool.Fixed 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Fixed 0 resolved"

(* Regression: the old Delay_cdf split_at recursed once per element and
   blew the stack around a few hundred thousand elements. *)
let split_at_million () =
  let m = 1_000_000 in
  let xs = List.init m Fun.id in
  let prefix, rest = Chunk.split_at (m - 1) xs in
  Alcotest.(check int) "prefix length" (m - 1) (List.length prefix);
  Alcotest.(check (list int)) "rest" [ m - 1 ] rest;
  Alcotest.(check int) "prefix head" 0 (List.hd prefix);
  let all, none = Chunk.split_at (2 * m) xs in
  Alcotest.(check int) "over-length prefix" m (List.length all);
  Alcotest.(check (list int)) "over-length rest" [] none;
  Alcotest.(check int) "drop length" 1 (List.length (Chunk.drop (m - 1) xs));
  match Chunk.split_at (-1) xs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative count accepted"

let chunks_and_ranges () =
  Alcotest.(check (list (list int))) "chunks"
    [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8 ] ]
    (Chunk.chunks ~size:3 [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
  Alcotest.(check (list (list int))) "chunks empty" [] (Chunk.chunks ~size:4 []);
  (match Chunk.chunks ~size:0 [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "size 0 accepted");
  let check_cover ~n ~pieces =
    let spans = Chunk.ranges ~n ~pieces in
    let covered = ref 0 in
    Array.iter
      (fun (start, len) ->
        Alcotest.(check int) "contiguous" !covered start;
        Alcotest.(check bool) "non-empty span" true (len > 0);
        covered := !covered + len)
      spans;
    Alcotest.(check int) "covers 0..n-1" n !covered;
    Alcotest.(check bool) "at most pieces" true (Array.length spans <= pieces)
  in
  check_cover ~n:10 ~pieces:3;
  check_cover ~n:3 ~pieces:8;
  check_cover ~n:16 ~pieces:4;
  Alcotest.(check int) "n = 0" 0 (Array.length (Chunk.ranges ~n:0 ~pieces:4))

let suite =
  [
    Alcotest.test_case "map = Array.map, order kept, pool reusable" `Quick map_matches_sequential;
    Alcotest.test_case "worker exceptions re-raised on caller" `Quick exceptions_propagate;
    Alcotest.test_case "shutdown idempotent; bad sizes rejected" `Quick shutdown_idempotent;
    Alcotest.test_case "map after shutdown raises" `Quick map_after_shutdown_raises;
    Alcotest.test_case "nested map on same pool detected" `Quick nested_map_detected;
    Alcotest.test_case "map_supervised isolates failures" `Quick map_supervised_isolates_failures;
    Alcotest.test_case "map_list and map_reduce" `Quick map_list_and_reduce;
    Alcotest.test_case "run dispatches on pool/domains" `Quick run_dispatch;
    Alcotest.test_case "--domains spec parsing" `Quick spec_parsing;
    Alcotest.test_case "split_at is tail-recursive (1M elements)" `Quick split_at_million;
    Alcotest.test_case "chunks and ranges partition correctly" `Quick chunks_and_ranges;
  ]
