module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
open Omn_baseline

(* --- Enumerate --- *)

let enumerate_counts () =
  (* Two contacts 0-1 then 1-2 in order: sequences from 0 within 2 hops:
     [c1], [c1; c2] -> 2. Reusing c1 twice (0->1->0) is also valid:
     [c1; c1]. Total = 3. *)
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.); (1, 2, 2., 3.) ] in
  Alcotest.(check int) "sequences" 3
    (Enumerate.count_sequences trace ~source:0 ~max_hops:2)

let enumerate_respects_chronology () =
  let trace = Util.trace_of_contacts [ (0, 1, 5., 6.); (1, 2, 0., 1.) ] in
  let fronts = Enumerate.frontiers trace ~source:0 ~max_hops:5 in
  Alcotest.(check bool) "0 cannot reach 2" true (Omn_core.Frontier.is_empty fronts.(2))

(* --- Dijkstra --- *)

let dijkstra_simple () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.); (1, 2, 5., 6.); (0, 2, 8., 9.) ] in
  let arrival = Dijkstra.earliest_arrival trace ~source:0 ~t0:0. in
  Util.check_float "self" 0. arrival.(0);
  Util.check_float "direct neighbour" 0. arrival.(1);
  Util.check_float "via relay" 5. arrival.(2);
  let late = Dijkstra.earliest_arrival trace ~source:0 ~t0:2. in
  Util.check_float "missed first contact" 8. late.(2);
  Util.check_float "node 1 unreachable now" infinity late.(1)

let dijkstra_inside_contact () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 10.) ] in
  let arrival = Dijkstra.earliest_arrival trace ~source:0 ~t0:4. in
  Util.check_float "mid-contact start" 4. arrival.(1)

let bounded_rows_monotone =
  QCheck2.Test.make ~count:150 ~name:"bounded rows non-increasing in hop budget"
    QCheck2.Gen.(pair int (int_range 1 25))
    (fun (seed, m) ->
      let rng = Rng.create seed in
      let trace = Util.random_trace rng ~n:5 ~m ~horizon:30 in
      let t0 = Rng.float_range rng 0. 30. in
      let rows = Dijkstra.earliest_arrival_bounded trace ~source:0 ~t0 ~max_hops:5 in
      let ok = ref true in
      for k = 1 to 5 do
        for v = 0 to 4 do
          if rows.(k).(v) > rows.(k - 1).(v) then ok := false
        done
      done;
      !ok)

let bounded_converges_to_dijkstra =
  QCheck2.Test.make ~count:150 ~name:"bounded with many hops = unbounded dijkstra"
    QCheck2.Gen.(pair int (int_range 1 20))
    (fun (seed, m) ->
      let rng = Rng.create seed in
      let trace = Util.random_trace rng ~n:5 ~m ~horizon:30 in
      let t0 = Rng.float_range rng 0. 30. in
      let rows = Dijkstra.earliest_arrival_bounded trace ~source:0 ~t0 ~max_hops:(m + 1) in
      let exact = Dijkstra.earliest_arrival trace ~source:0 ~t0 in
      Array.for_all2 (fun a b -> a = b) rows.(m + 1) exact)

let min_delay_consistent () =
  let trace = Util.trace_of_contacts [ (0, 1, 3., 4.) ] in
  Util.check_float "delay" 3. (Dijkstra.min_delay trace ~source:0 ~dest:1 ~t0:0.);
  Util.check_float "unreachable" infinity (Dijkstra.min_delay trace ~source:0 ~dest:1 ~t0:5.)

(* --- Flooding --- *)

let flooding_monotone =
  QCheck2.Test.make ~count:100 ~name:"flooding delivery non-decreasing in creation time"
    QCheck2.Gen.(pair int (int_range 1 20))
    (fun (seed, m) ->
      let rng = Rng.create seed in
      let trace = Util.random_trace rng ~n:5 ~m ~horizon:30 in
      let oracle = Flooding.compute trace ~source:0 in
      let ok = ref true in
      for dest = 1 to 4 do
        let prev = ref neg_infinity in
        for i = 0 to 60 do
          let t = float_of_int i /. 2. in
          let d = Flooding.del oracle ~dest t in
          if d < !prev then ok := false;
          prev := d
        done
      done;
      !ok)

let flooding_self () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.) ] in
  let oracle = Flooding.compute trace ~source:0 in
  Util.check_float "self-delivery is immediate" 7. (Flooding.del oracle ~dest:0 7.)

let suite =
  [
    Alcotest.test_case "enumerate counts sequences" `Quick enumerate_counts;
    Alcotest.test_case "enumerate respects chronology" `Quick enumerate_respects_chronology;
    Alcotest.test_case "dijkstra on a relay chain" `Quick dijkstra_simple;
    Alcotest.test_case "dijkstra mid-contact start" `Quick dijkstra_inside_contact;
    Alcotest.test_case "min_delay" `Quick min_delay_consistent;
    Alcotest.test_case "flooding self delivery" `Quick flooding_self;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ bounded_rows_monotone; bounded_converges_to_dijkstra; flooding_monotone ]
