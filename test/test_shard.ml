(* The multi-process shard layer: ring placement, wire framing, the
   protocol round-trip, the per-source partial merge, and the
   coordinator's end-to-end guarantees — a 3-worker run is
   bit-identical to the single-process driver, and stays bit-identical
   (with every source accounted for exactly once) under any single
   worker-kill/restart schedule. *)

module Ring = Omn_shard.Ring
module Frame = Omn_shard.Frame
module Proto = Omn_shard.Proto
module Coord = Omn_shard.Coord
module Transport = Omn_shard.Transport
module Auth = Omn_shard.Auth
module Store = Omn_shard.Store
module Err = Omn_robust.Err
module Faultgen = Omn_robust.Faultgen
module S = Omn_resilience.Supervise
module Delay_cdf = Omn_core.Delay_cdf
module Trace_io = Omn_temporal.Trace_io
module Rng = Omn_stats.Rng

let curves_equal (a : Delay_cdf.curves) (b : Delay_cdf.curves) =
  a.grid = b.grid && a.hop_success = b.hop_success && a.hop_success_inf = b.hop_success_inf
  && a.flood_success = b.flood_success && a.flood_success_inf = b.flood_success_inf
  && a.max_rounds_used = b.max_rounds_used

(* --- Ring --- *)

let ring_assign_deterministic () =
  let r = Ring.create ~workers:4 () in
  let alive = [ 0; 1; 2; 3 ] in
  let sources = List.init 50 Fun.id in
  let m1 = List.map (Ring.assign r ~alive) sources in
  let m2 = List.map (Ring.assign (Ring.create ~workers:4 ()) ~alive) sources in
  Alcotest.(check (list int)) "same assignment from a fresh ring" m1 m2;
  List.iter
    (fun w -> Alcotest.(check bool) "owner is a live worker" true (w >= 0 && w < 4))
    m1;
  (* every worker owns something at 50 sources and 64 vnodes *)
  List.iter
    (fun w -> Alcotest.(check bool) (Printf.sprintf "worker %d owns sources" w) true (List.mem w m1))
    alive

let ring_successor_moves_only_dead () =
  let r = Ring.create ~workers:4 () in
  let all = [ 0; 1; 2; 3 ] in
  let sources = List.init 80 Fun.id in
  let dead = 2 in
  let alive = List.filter (fun w -> w <> dead) all in
  List.iter
    (fun s ->
      let before = Ring.assign r ~alive:all s in
      let after = Ring.assign r ~alive s in
      if before <> dead then
        Alcotest.(check int) (Printf.sprintf "source %d stays put" s) before after
      else Alcotest.(check bool) "moved to a survivor" true (List.mem after alive))
    sources;
  (* the dead worker's sources spread over more than one successor *)
  let moved =
    List.filter_map
      (fun s -> if Ring.assign r ~alive:all s = dead then Some (Ring.assign r ~alive s) else None)
      sources
  in
  Alcotest.(check bool) "vnodes spread the failover load" true
    (List.length (List.sort_uniq compare moved) > 1)

let ring_validation () =
  (match Ring.create ~workers:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "workers=0 accepted");
  let r = Ring.create ~workers:2 () in
  (match Ring.assign r ~alive:[] 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty alive accepted");
  match Ring.assign r ~alive:[ 0; 5 ] 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown worker accepted"

let ring_map_digest () =
  let r = Ring.create ~workers:3 () in
  let sources = List.init 20 Fun.id in
  let d1 = Ring.map_sha256 r ~alive:[ 0; 1; 2 ] ~sources in
  let d2 = Ring.map_sha256 r ~alive:[ 0; 1; 2 ] ~sources in
  Alcotest.(check string) "digest stable" d1 d2;
  Alcotest.(check int) "hex sha256" 64 (String.length d1);
  let d3 = Ring.map_sha256 r ~alive:[ 0; 1 ] ~sources in
  Alcotest.(check bool) "digest tracks the assignment" true (d1 <> d3)

let ring_dynamic_membership () =
  let r = Ring.create ~workers:3 () in
  let sources = List.init 100 Fun.id in
  let before = List.map (Ring.assign r ~alive:[ 0; 1; 2 ]) sources in
  let r4 = Ring.add r 3 in
  Alcotest.(check (list int)) "members after join" [ 0; 1; 2; 3 ] (Ring.members r4);
  let after = List.map (Ring.assign r4 ~alive:[ 0; 1; 2; 3 ]) sources in
  List.iter2
    (fun b a -> if a <> 3 then Alcotest.(check int) "unmoved source keeps its owner" b a)
    before after;
  Alcotest.(check bool) "the joiner owns something at 100 sources" true (List.mem 3 after);
  let restored = List.map (Ring.assign (Ring.remove r4 3) ~alive:[ 0; 1; 2 ]) sources in
  Alcotest.(check (list int)) "leave restores the pre-join assignment" before restored;
  Alcotest.(check (list int)) "re-adding a member is a no-op" after
    (List.map (Ring.assign (Ring.add r4 3) ~alive:[ 0; 1; 2; 3 ]) sources);
  Alcotest.(check (list int)) "removing an absent member is a no-op" before
    (List.map (Ring.assign (Ring.remove r 7) ~alive:[ 0; 1; 2 ]) sources);
  (match Ring.add r (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative id accepted");
  match Ring.remove (Ring.create ~workers:1 ()) 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "removed the last member"

(* --- Frame --- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let frame_roundtrip () =
  with_socketpair @@ fun a b ->
  let payload = "the quick brown fox \x00\xff jumps" in
  Frame.write a payload;
  Frame.write a "";
  (match Frame.read b with
  | Ok s -> Alcotest.(check string) "payload intact" payload s
  | Error _ -> Alcotest.fail "clean frame rejected");
  match Frame.read b with
  | Ok s -> Alcotest.(check string) "empty payload ok" "" s
  | Error _ -> Alcotest.fail "empty frame rejected"

let frame_corrupt_and_eof () =
  with_socketpair @@ fun a b ->
  Frame.write a "payload-to-mangle";
  (match Frame.read ~mangle:true b with
  | Error `Corrupt -> ()
  | Ok _ -> Alcotest.fail "mangled frame passed the CRC"
  | Error _ -> Alcotest.fail "mangled frame misclassified");
  Unix.close a;
  match Frame.read b with
  | Error `Eof -> ()
  | _ -> Alcotest.fail "closed peer must read as Eof"

(* --- fuzz: the decode path must survive arbitrary wire damage --- *)

(* A frame's exact wire bytes, captured through a socketpair. *)
let raw_frame payload =
  with_socketpair @@ fun a b ->
  Frame.write a payload;
  Unix.close a;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read b chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
  in
  drain ();
  Buffer.contents buf

(* Feed raw bytes to [Frame.read]. The writer closes after the bytes,
   so a decoder that wants more data sees Eof instead of hanging. *)
let feed raw =
  with_socketpair @@ fun a b ->
  let bytes = Bytes.of_string raw in
  let rec send off =
    if off < Bytes.length bytes then
      send (off + Unix.write a bytes off (Bytes.length bytes - off))
  in
  send 0;
  Unix.close a;
  Frame.read b

let prop_frame_decode_fuzz =
  QCheck2.Test.make ~count:120
    ~name:"mutated/truncated frames: typed error or clean payload, never an exception"
    QCheck2.Gen.(triple (string_size (int_range 0 120)) (int_range 0 1000) (int_range 0 1000))
    (fun (payload, pos, kind) ->
      let raw = raw_frame payload in
      let mutated =
        match kind mod 3 with
        | 0 ->
          (* flip one byte anywhere: length prefix, version, payload or CRC *)
          let b = Bytes.of_string raw in
          let i = pos mod Bytes.length b in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5b));
          Bytes.to_string b
        | 1 -> String.sub raw 0 (pos mod (String.length raw + 1)) (* truncate *)
        | _ -> String.make (1 + (pos mod 7)) '\238' ^ raw (* garbage prefix *)
      in
      match feed mutated with
      | Ok s ->
        (* a survivable mutation (e.g. truncation at the full length) —
           the protocol decoder behind it must not raise either *)
        ignore (Proto.decode_to_worker s);
        ignore (Proto.decode_from_worker s);
        true
      | Error (`Eof | `Corrupt | `Timeout) -> true)

let prop_proto_decode_fuzz =
  QCheck2.Test.make ~count:200 ~name:"random payloads never crash the protocol decoder"
    QCheck2.Gen.(string_size (int_range 0 80))
    (fun s ->
      (match Proto.decode_to_worker s with Ok _ | Error _ -> ());
      (match Proto.decode_from_worker s with Ok _ | Error _ -> ());
      true)

(* --- Proto --- *)

let proto_roundtrip () =
  let job =
    {
      Proto.trace_digest = String.make 64 'a'; worker = 1; max_hops = 4;
      dests = Some [ 1; 2 ]; grid = Some [| 1.; 2. |]; windows = Some [ (0., 10.) ];
      supervise = Some (2, 0.05, 1., 0); ckpt_path = None; fingerprint = "fp"; domains = 2;
      telemetry = true;
    }
  in
  List.iter
    (fun m ->
      match Proto.decode_to_worker (Proto.encode_to_worker m) with
      | Ok m' -> Alcotest.(check bool) "to_worker round-trips" true (m = m')
      | Error e -> Alcotest.failf "to_worker decode failed: %s" e)
    [
      Proto.Job job; Proto.Compute { slot = 3; source = 7 }; Proto.Ping; Proto.Shutdown;
      Proto.Trace_data { digest = String.make 64 'b'; text = "0 1 0 1\n" };
      Proto.Stats_pull { t_coord = 1234.5 };
    ];
  List.iter
    (fun m ->
      match Proto.decode_from_worker (Proto.encode_from_worker m) with
      | Ok m' -> Alcotest.(check bool) "from_worker round-trips" true (m = m')
      | Error e -> Alcotest.failf "from_worker decode failed: %s" e)
    [
      Proto.Hello { worker = 1 }; Proto.Hello { worker = -1 };
      Proto.Ready { worker = 1; resumed = 4 };
      Proto.Result { slot = 0; source = 5; partial = "bytes" };
      Proto.Failed { slot = 1; source = 6; attempts = 3; reason = "poison" }; Proto.Pong;
      Proto.Need_trace { digest = String.make 64 'c' }; Proto.Leave { worker = 2 };
      Proto.Stats_push
        {
          worker = 1;
          t_coord = 1234.5;
          t_worker = 1234.25;
          metrics = Omn_obs.Metrics.empty_snapshot;
          events =
            [ (0, { Omn_obs.Timeline.ts = 2.5; ev = Shard_compute { source = 3; start = 2. } }) ];
          dropped = [ (0, 7) ];
        };
    ];
  match Proto.decode_to_worker "not a marshal payload" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded"

let fingerprint_sensitivity () =
  let fp ?(trace = "t") ?(max_hops = 10) ?dests ?grid ?windows () =
    Proto.job_fingerprint ~trace_text:trace ~max_hops ~dests ~grid ~windows
  in
  let base = fp () in
  Alcotest.(check string) "deterministic" base (fp ());
  List.iter
    (fun (what, other) -> Alcotest.(check bool) (what ^ " changes it") true (other <> base))
    [
      ("trace", fp ~trace:"u" ()); ("max_hops", fp ~max_hops:9 ());
      ("dests", fp ~dests:[ 0 ] ()); ("grid", fp ~grid:[| 1. |] ());
      ("windows", fp ~windows:[ (0., 1.) ] ());
    ]

(* --- Transport --- *)

let transport_parse () =
  let ok s =
    match Transport.parse s with
    | Ok a -> a
    | Error e -> Alcotest.failf "%S rejected: %s" s (Err.to_string e)
  in
  (match ok "/tmp/omn.sock" with
  | Transport.Unix_path p -> Alcotest.(check string) "unix path" "/tmp/omn.sock" p
  | Transport.Tcp _ -> Alcotest.fail "path parsed as tcp");
  (match ok "127.0.0.1:9000" with
  | Transport.Tcp (h, p) ->
    Alcotest.(check string) "host" "127.0.0.1" h;
    Alcotest.(check int) "port" 9000 p
  | Transport.Unix_path _ -> Alcotest.fail "host:port parsed as path");
  List.iter
    (fun a ->
      Alcotest.(check bool) "to_string/parse round-trip" true
        (Transport.parse (Transport.to_string a) = Ok a))
    [
      Transport.Unix_path "/x/y.sock"; Transport.Tcp ("localhost", 1);
      Transport.Tcp ("10.0.0.2", 65535);
    ];
  List.iter
    (fun s ->
      match Transport.parse s with
      | Error { Err.code = Err.Usage; _ } -> ()
      | Error e -> Alcotest.failf "%S: wrong error %s" s (Err.to_string e)
      | Ok _ -> Alcotest.failf "%S accepted" s)
    [ ""; ":9"; "host:70000" ]

let transport_tcp_dial () =
  let spec = Transport.Tcp ("127.0.0.1", 0) in
  let lfd = Transport.listen spec in
  let closed = ref false in
  let close_listener () =
    if not !closed then begin
      closed := true;
      try Unix.close lfd with Unix.Unix_error _ -> ()
    end
  in
  Fun.protect ~finally:close_listener @@ fun () ->
  let addr = Transport.bound_addr lfd spec in
  let port =
    match addr with
    | Transport.Tcp (_, p) -> p
    | Transport.Unix_path _ -> Alcotest.fail "tcp listener bound a path"
  in
  Alcotest.(check bool) "kernel picked a real port" true (port > 0);
  (match Transport.dial ~attempts:2 ~backoff:0.01 addr with
  | Error e -> Alcotest.failf "dial failed: %s" (Err.to_string e)
  | Ok cfd ->
    let sfd, _ = Unix.accept lfd in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close cfd with Unix.Unix_error _ -> ());
        try Unix.close sfd with Unix.Unix_error _ -> ())
    @@ fun () ->
    Frame.write cfd "over tcp";
    match Frame.read sfd with
    | Ok s -> Alcotest.(check string) "framed payload over TCP" "over tcp" s
    | Error _ -> Alcotest.fail "TCP frame rejected");
  close_listener ();
  (* the port is free again: the bounded retry budget must end in a
     typed E-IO, not an exception or a hang *)
  match Transport.dial ~attempts:2 ~backoff:0.01 (Transport.Tcp ("127.0.0.1", port)) with
  | Ok fd ->
    Unix.close fd;
    Alcotest.fail "dial to a closed listener succeeded"
  | Error { Err.code = Err.Io; _ } -> ()
  | Error e -> Alcotest.failf "wrong error code: %s" (Err.to_string e)

(* --- Auth --- *)

let auth_hmac () =
  let h = Auth.hmac ~key:"k" "msg" in
  Alcotest.(check int) "hex sha256 mac" 64 (String.length h);
  Alcotest.(check string) "deterministic" h (Auth.hmac ~key:"k" "msg");
  Alcotest.(check bool) "key matters" true (h <> Auth.hmac ~key:"k2" "msg");
  Alcotest.(check bool) "message matters" true (h <> Auth.hmac ~key:"k" "msg2")

(* Both handshake sides block on each other, so the server runs in its
   own domain over a socketpair. *)
let auth_handshake_ok () =
  with_socketpair @@ fun c s ->
  let st = Auth.state () in
  let srv = Domain.spawn (fun () -> Auth.server ~state:st ~key:"k1" s) in
  let cli = Auth.client ~key:"k1" c in
  let srv = Domain.join srv in
  (match cli with
  | Ok () -> ()
  | Error e -> Alcotest.failf "client failed: %s" (Err.to_string e));
  match srv with
  | Ok () -> ()
  | Error e -> Alcotest.failf "server failed: %s" (Err.to_string e)

let auth_wrong_key () =
  with_socketpair @@ fun c s ->
  let st = Auth.state () in
  let srv = Domain.spawn (fun () -> Auth.server ~state:st ~key:"right" s) in
  let cli = Auth.client ~key:"wrong" c in
  (match cli with
  | Ok () -> Alcotest.fail "wrong key accepted by client"
  | Error e -> Alcotest.(check bool) "client side is typed E-AUTH" true (e.Err.code = Err.Auth));
  (* the failed client drops the link; that unblocks the server side *)
  (try Unix.close c with Unix.Unix_error _ -> ());
  match Domain.join srv with
  | Ok () -> Alcotest.fail "wrong key accepted by server"
  | Error _ -> ()

let auth_replay_and_version () =
  let st = Auth.state () in
  let a1 =
    Printf.sprintf "omn-auth1 %d %s %s" Auth.protocol_version Auth.default_build
      (String.make 32 'e')
  in
  (* first use of the nonce: the server accepts A1 and answers A2 *)
  with_socketpair (fun c s ->
      let srv = Domain.spawn (fun () -> Auth.server ~state:st ~key:"k" s) in
      Frame.write c a1;
      (match Frame.read c with
      | Ok reply ->
        Alcotest.(check bool) "A2 answered for a fresh nonce" true
          (String.length reply >= 9 && String.sub reply 0 9 = "omn-auth2")
      | Error _ -> Alcotest.fail "no A2 reply");
      (* we never send A3; closing makes the server fail out cleanly *)
      Unix.close c;
      ignore (Domain.join srv));
  (* replaying the same client nonce must be a typed E-AUTH rejection *)
  with_socketpair (fun c s ->
      let srv = Domain.spawn (fun () -> Auth.server ~state:st ~key:"k" s) in
      Frame.write c a1;
      let reply = Frame.read c in
      (match Domain.join srv with
      | Ok () -> Alcotest.fail "replayed nonce accepted"
      | Error e -> Alcotest.(check bool) "replay is E-AUTH" true (e.Err.code = Err.Auth));
      match reply with
      | Ok r ->
        Alcotest.(check bool) "rejection frame shipped before closing" true
          (String.length r >= 12 && String.sub r 0 12 = "omn-auth-err")
      | Error _ -> Alcotest.fail "no rejection frame");
  (* a different protocol version is E-PROTO, not E-AUTH *)
  with_socketpair (fun c s ->
      let srv = Domain.spawn (fun () -> Auth.server ~state:(Auth.state ()) ~key:"k" s) in
      Frame.write c
        (Printf.sprintf "omn-auth1 %d %s %s" 99 Auth.default_build (String.make 32 'f'));
      (match Domain.join srv with
      | Ok () -> Alcotest.fail "version mismatch accepted"
      | Error e -> Alcotest.(check bool) "version mismatch is E-PROTO" true (e.Err.code = Err.Proto));
      ignore (Frame.read c))

(* --- Store --- *)

let store_roundtrip () =
  let dir = Filename.temp_file "omn_store" ".d" in
  Sys.remove dir;
  let text = "0 1 0 1\n0 2 5 9\n" in
  let digest = Omn_obs.Sha256.string text in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove (Store.path ~dir ~digest) with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  Alcotest.(check bool) "miss on an empty store" true (Store.get ~dir ~digest = None);
  (match Store.put ~dir ~digest text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "put failed: %s" (Err.to_string e));
  (match Store.get ~dir ~digest with
  | Some t -> Alcotest.(check string) "round-trip" text t
  | None -> Alcotest.fail "stored trace not found");
  (match Store.put ~dir ~digest:(String.make 64 '0') text with
  | Error { Err.code = Err.Checkpoint; _ } -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Err.to_string e)
  | Ok () -> Alcotest.fail "digest mismatch accepted");
  (* flip one stored byte: corruption must read as a miss, never as a
     wrong trace *)
  let p = Store.path ~dir ~digest in
  let ic = open_in_bin p in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string contents in
  let i = Bytes.length b - 3 in
  Bytes.set b i (if Bytes.get b i = 'X' then 'Y' else 'X');
  let oc = open_out_bin p in
  output_bytes oc b;
  close_out oc;
  Alcotest.(check bool) "corrupt entry is a miss" true (Store.get ~dir ~digest = None)

(* --- partial merge --- *)

let trace = Util.random_trace (Rng.create 1731) ~n:10 ~m:60 ~horizon:120
let grid = [| 1.; 5.; 20.; 60.; 120. |]
let max_hops = 3
let sources = Delay_cdf.uniform_order (List.init 10 Fun.id)
let reference = Delay_cdf.compute ~max_hops ~grid ~sources trace

let partial_merge_bit_identity () =
  let m = Delay_cdf.merger_create ~max_hops ~grid () in
  List.iter
    (fun s ->
      let p = Delay_cdf.source_partial ~max_hops ~grid trace s in
      (* through the wire representation, like a real worker *)
      match Delay_cdf.partial_of_string (Delay_cdf.partial_to_string p) with
      | Ok p -> Delay_cdf.merger_add m p
      | Error e -> Alcotest.failf "partial round-trip failed: %s" e)
    sources;
  Alcotest.(check bool) "merged partials bit-identical to compute" true
    (curves_equal (Delay_cdf.merger_curves m) reference);
  match Delay_cdf.partial_of_string "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage partial decoded"

(* --- the coordinator, end to end --- *)

(* [Spawn_exec] re-executes this test binary, which doubles as its own
   worker (see the escape hatch in [Test_main]). [Spawn_fork] would be
   cheaper but is illegal here: suites that ran earlier created domains,
   and OCaml 5 forbids [Unix.fork] in a multi-domain process. *)
(* max_inflight = 2 keeps dispatch behind the chaos schedules below: a
   victim is always killed while it still has undispatched sources, so
   failover is required for completion rather than a timing accident. *)
let shard_cfg ~workers =
  {
    (Coord.default ~workers) with
    Coord.heartbeat_interval = 0.05;
    heartbeat_timeout = 2.;
    respawn_backoff = 0.01;
    max_inflight = 2;
  }

let run_ok ?(cfg = shard_cfg ~workers:3) () =
  match Coord.run ~max_hops ~grid cfg trace with
  | Ok v -> v
  | Error e -> Alcotest.failf "sharded run failed: %s" (Omn_robust.Err.to_string e)

let coord_bit_identity () =
  let curves, p, st = run_ok () in
  Alcotest.(check bool) "complete" false p.Delay_cdf.partial;
  Alcotest.(check int) "every source accounted for" 10 p.Delay_cdf.sources_done;
  Alcotest.(check (list int)) "nothing degraded" []
    (List.map (fun (f : S.failure) -> f.S.item) p.Delay_cdf.degraded);
  Alcotest.(check bool) "bit-identical to single-process" true (curves_equal curves reference);
  Alcotest.(check int) "exactly one spawn per worker" 3 st.Coord.spawns;
  Alcotest.(check int) "hex shard map digest" 64 (String.length st.Coord.shard_map_sha256)

(* Kill ALL workers early in a 40-source run. With the 2-source
   in-flight window, at most 6 initial + 3 ack-freed dispatches can
   precede the last kill, so every victim strands undispatched work —
   completion then requires a respawn, a reassignment and a rejoin,
   deterministically (a lone kill can be absorbed by results already in
   the socket buffer, which is correct but unobservable). *)
let coord_kill_failover () =
  let big_trace = Util.random_trace (Rng.create 97) ~n:40 ~m:200 ~horizon:200 in
  let big_sources = Delay_cdf.uniform_order (List.init 40 Fun.id) in
  let big_reference = Delay_cdf.compute ~max_hops ~grid ~sources:big_sources big_trace in
  let chaos =
    List.map
      (fun v -> { Faultgen.after_results = 1 + v; victim = v; shard_fault = Faultgen.Worker_kill })
      [ 0; 1; 2 ]
  in
  let ckpt_dir = Filename.temp_file "omn_shard" ".d" in
  Sys.remove ckpt_dir;
  Unix.mkdir ckpt_dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> try Sys.remove (Filename.concat ckpt_dir f) with Sys_error _ -> ())
        (Sys.readdir ckpt_dir);
      try Unix.rmdir ckpt_dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let cfg = { (shard_cfg ~workers:3) with Coord.chaos; ckpt_dir = Some ckpt_dir } in
  match Coord.run ~max_hops ~grid cfg big_trace with
  | Error e -> Alcotest.failf "sharded run failed: %s" (Omn_robust.Err.to_string e)
  | Ok (curves, p, st) ->
    Alcotest.(check bool) "complete despite every worker dying" false p.Delay_cdf.partial;
    Alcotest.(check int) "no source lost" 40 p.Delay_cdf.sources_done;
    Alcotest.(check bool) "bit-identical after failover" true (curves_equal curves big_reference);
    Alcotest.(check bool) "respawn happened" true (st.Coord.spawns > 3);
    Alcotest.(check bool) "reassignment recorded" true (st.Coord.reassigned > 0);
    Alcotest.(check bool) "a respawned worker rejoined" true (st.Coord.rejoins > 0)

(* Deterministic membership schedules: a join mid-run, a leave mid-run,
   and a join followed by killing the joiner all keep the merge
   bit-identical to the single-process reference — placement is pure
   metadata, so churn may only move work, never lose or double it. *)
let coord_membership () =
  let m_trace = Util.random_trace (Rng.create 311) ~n:24 ~m:140 ~horizon:160 in
  let m_sources = Delay_cdf.uniform_order (List.init 24 Fun.id) in
  let m_reference = Delay_cdf.compute ~max_hops ~grid ~sources:m_sources m_trace in
  let run ~workers chaos =
    match Coord.run ~max_hops ~grid { (shard_cfg ~workers) with Coord.chaos } m_trace with
    | Error e -> Alcotest.failf "membership run failed: %s" (Omn_robust.Err.to_string e)
    | Ok (curves, p, st) ->
      Alcotest.(check bool) "complete" false p.Delay_cdf.partial;
      Alcotest.(check int) "every source accounted for" 24 p.Delay_cdf.sources_done;
      Alcotest.(check bool) "bit-identical under membership churn" true
        (curves_equal curves m_reference);
      st
  in
  let st =
    run ~workers:2
      [ { Faultgen.after_results = 2; victim = 0; shard_fault = Faultgen.Worker_join } ]
  in
  Alcotest.(check int) "join mid-run: one member joined" 1 st.Coord.joins;
  let st =
    run ~workers:3
      [ { Faultgen.after_results = 2; victim = 1; shard_fault = Faultgen.Worker_leave } ]
  in
  Alcotest.(check int) "leave mid-run: one member left" 1 st.Coord.leaves;
  Alcotest.(check bool) "the leaver's sources were reassigned" true (st.Coord.reassigned > 0);
  (* victim 2 of the second event is the joiner (members 0,1 + joined 2) *)
  let st =
    run ~workers:2
      [
        { Faultgen.after_results = 1; victim = 0; shard_fault = Faultgen.Worker_join };
        { Faultgen.after_results = 4; victim = 2; shard_fault = Faultgen.Worker_kill };
      ]
  in
  Alcotest.(check int) "join-then-kill: joined before the kill" 1 st.Coord.joins;
  Alcotest.(check bool) "join-then-kill: the kill forced a respawn" true (st.Coord.spawns >= 3)

(* Heartbeat loss detection under a signal storm: SIGALRM at 200 Hz
   interrupts select/accept/waitpid with EINTR for the whole run. Every
   such call is routed through [Retry_io.eintr], so no live worker may
   be declared dead and no spurious respawn may fire. (The itimer is
   not inherited across fork, so only the coordinator is stormed.) *)
let coord_signal_storm () =
  let prev = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let stop () =
    ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.; it_value = 0. });
    Sys.set_signal Sys.sigalrm prev
  in
  Fun.protect ~finally:stop @@ fun () ->
  ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.005; it_value = 0.005 });
  let curves, p, st = run_ok () in
  Alcotest.(check bool) "complete under the signal storm" false p.Delay_cdf.partial;
  Alcotest.(check bool) "bit-identical under the signal storm" true
    (curves_equal curves reference);
  Alcotest.(check int) "EINTR never read as a dead worker" 0 st.Coord.heartbeat_misses;
  Alcotest.(check int) "no spurious respawns" 3 st.Coord.spawns

(* Property: any single worker-kill/restart schedule — whichever victim,
   whenever it fires — yields bit-identical curves with every source
   merged exactly once (at-most-once accounting absorbs reassignment
   races as counted duplicate drops, never double merges). *)
let prop_single_kill_schedules =
  QCheck2.Test.make ~count:6 ~name:"single worker-kill schedules: bit-identical, no double count"
    QCheck2.Gen.(pair (int_range 0 8) (int_range 0 2))
    (fun (after_results, victim) ->
      let chaos = [ { Faultgen.after_results; victim; shard_fault = Faultgen.Worker_kill } ] in
      match Coord.run ~max_hops ~grid { (shard_cfg ~workers:3) with Coord.chaos } trace with
      | Error e -> QCheck2.Test.fail_reportf "run failed: %s" (Omn_robust.Err.to_string e)
      | Ok (curves, p, st) ->
        if p.Delay_cdf.partial then QCheck2.Test.fail_report "spurious partial";
        if p.Delay_cdf.sources_done <> 10 then
          QCheck2.Test.fail_reportf "%d/10 sources merged (duplicates dropped: %d)"
            p.Delay_cdf.sources_done st.Coord.duplicates;
        curves_equal curves reference)

(* --- fleet telemetry --- *)

(* A 2-worker telemetry run against a single-process reference: the
   merged cross-worker counter totals must equal the single-process
   run's (both count the same deterministic per-source work), every
   worker must have shipped timeline segments with [Shard_compute]
   spans and a stamped dropped counter, and a live scrape of the
   [--stat-addr] endpoint while the run is up must return a Prometheus
   text exposition. Results stay bit-identical with telemetry on. *)
let coord_fleet_telemetry () =
  let f_trace = Util.random_trace (Rng.create 523) ~n:40 ~m:200 ~horizon:200 in
  let f_sources = Delay_cdf.uniform_order (List.init 40 Fun.id) in
  let module M = Omn_obs.Metrics in
  let was = M.enabled () in
  M.reset ();
  M.set_enabled true;
  let f_reference = Delay_cdf.compute ~max_hops ~grid ~sources:f_sources f_trace in
  let solo = M.snapshot () in
  M.reset ();
  M.set_enabled was;
  (* the scraper polls from another domain while the coordinator runs *)
  let stat_addr = Atomic.make None in
  let scraper =
    Domain.spawn (fun () ->
        let rec wait n =
          match Atomic.get stat_addr with
          | Some a -> Some a
          | None -> if n = 0 then None else (Unix.sleepf 0.005; wait (n - 1))
        in
        match wait 2000 with
        | None -> Error "stat endpoint never bound"
        | Some a ->
          let rec scrape tries =
            match Transport.dial ~attempts:1 a with
            | Error e ->
              if tries = 0 then Error (Err.to_string e)
              else (
                Unix.sleepf 0.01;
                scrape (tries - 1))
            | Ok fd ->
              Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              @@ fun () ->
              let req = "GET /metrics HTTP/1.1\r\nHost: omn\r\n\r\n" in
              ignore (Unix.write_substring fd req 0 (String.length req));
              let buf = Buffer.create 4096 in
              let chunk = Bytes.create 4096 in
              let rec drain () =
                match Unix.read fd chunk 0 4096 with
                | 0 -> ()
                | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  drain ()
                | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
              in
              drain ();
              Ok (Buffer.contents buf)
          in
          scrape 400)
  in
  let cfg =
    {
      (shard_cfg ~workers:2) with
      Coord.telemetry = true;
      stats_interval = 0.05;
      stat_addr = Some (Transport.Tcp ("127.0.0.1", 0));
      on_stat_bound = Some (fun a -> Atomic.set stat_addr (Some a));
    }
  in
  let curves, p, st =
    match Coord.run ~max_hops ~grid ~sources:f_sources cfg f_trace with
    | Ok v -> v
    | Error e ->
      Atomic.set stat_addr (Some (Transport.Tcp ("127.0.0.1", 1)));
      ignore (Domain.join scraper);
      Alcotest.failf "telemetry run failed: %s" (Err.to_string e)
  in
  let scraped = Domain.join scraper in
  Alcotest.(check bool) "complete" false p.Delay_cdf.partial;
  Alcotest.(check bool) "bit-identical with telemetry on" true (curves_equal curves f_reference);
  Alcotest.(check (list int)) "telemetry from both workers, ascending" [ 0; 1 ]
    (List.map (fun t -> t.Coord.tw_worker) st.Coord.fleet);
  let merged =
    M.merge_all
      (List.map (fun t -> M.tag_worker ~worker:t.Coord.tw_worker t.Coord.tw_metrics) st.Coord.fleet)
  in
  List.iter
    (fun name ->
      Alcotest.(check (option int))
        (Printf.sprintf "merged %s equals single-process" name)
        (M.counter_total solo name) (M.counter_total merged name))
    [ "frontier.points_kept"; "frontier.points_pruned" ];
  List.iter
    (fun t ->
      let computes =
        List.filter
          (fun (_, (e : Omn_obs.Timeline.entry)) ->
            match e.Omn_obs.Timeline.ev with Omn_obs.Timeline.Shard_compute _ -> true | _ -> false)
          t.Coord.tw_events
      in
      if computes = [] then
        Alcotest.failf "worker %d shipped no shard.compute events" t.Coord.tw_worker;
      Alcotest.(check bool) "rtt measured" true (t.Coord.tw_rtt >= 0.);
      match M.counter_total t.Coord.tw_metrics "timeline.dropped_events" with
      | Some _ -> ()
      | None -> Alcotest.failf "worker %d: dropped counter not stamped" t.Coord.tw_worker)
    st.Coord.fleet;
  let text = M.to_prometheus merged in
  let contains hay needle =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "merged exposition has both worker labels" true
    (contains text "{worker=\"0\"}" && contains text "{worker=\"1\"}");
  match scraped with
  | Error e -> Alcotest.failf "live scrape failed: %s" e
  | Ok body ->
    Alcotest.(check bool) "HTTP 200" true (contains body "HTTP/1.1 200");
    Alcotest.(check bool) "prometheus content type" true
      (contains body "text/plain; version=0.0.4");
    Alcotest.(check bool) "exposition body served live" true
      (contains body "# TYPE omn_shard_worker_spawns counter")

(* --- exit-code precedence --- *)

let exit_code_precedence () =
  Alcotest.(check int) "partial beats degraded" 124 (S.exit_code ~partial:true ~degraded:true);
  Alcotest.(check int) "partial alone" 124 (S.exit_code ~partial:true ~degraded:false);
  Alcotest.(check int) "degraded-but-complete" 3 (S.exit_code ~partial:false ~degraded:true);
  Alcotest.(check int) "clean" 0 (S.exit_code ~partial:false ~degraded:false)

(* --- Faultgen shard schedules --- *)

let shard_schedule_properties () =
  let sched = Faultgen.shard_schedule ~seed:9 ~workers:3 ~results:20 4 in
  Alcotest.(check int) "requested length" 4 (List.length sched);
  Alcotest.(check bool) "deterministic" true
    (sched = Faultgen.shard_schedule ~seed:9 ~workers:3 ~results:20 4);
  Alcotest.(check bool) "seed matters" true
    (sched <> Faultgen.shard_schedule ~seed:10 ~workers:3 ~results:20 4);
  let points = List.map (fun (e : Faultgen.shard_event) -> e.Faultgen.after_results) sched in
  Alcotest.(check (list int)) "ascending distinct trigger points" (List.sort_uniq compare points)
    points;
  List.iter
    (fun (e : Faultgen.shard_event) ->
      Alcotest.(check bool) "in the first half" true
        (e.Faultgen.after_results >= 0 && e.Faultgen.after_results <= 10);
      Alcotest.(check bool) "victim in range" true
        (e.Faultgen.victim >= 0 && e.Faultgen.victim < 3))
    sched;
  (match Faultgen.shard_schedule ~seed:1 ~workers:0 ~results:10 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "workers=0 accepted");
  (match Faultgen.shard_schedule ~seed:1 ~workers:2 ~results:10 ~kinds:[] 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty kinds accepted");
  List.iter
    (fun n ->
      match Faultgen.shard_fault_of_name n with
      | Some f -> Alcotest.(check string) "name round-trips" n (Faultgen.shard_fault_name f)
      | None -> Alcotest.failf "%s not parsed" n)
    Faultgen.shard_fault_names

let suite =
  [
    Alcotest.test_case "ring assignment deterministic" `Quick ring_assign_deterministic;
    Alcotest.test_case "ring death moves only the dead worker's sources" `Quick
      ring_successor_moves_only_dead;
    Alcotest.test_case "ring rejects malformed arguments" `Quick ring_validation;
    Alcotest.test_case "ring map digest tracks the assignment" `Quick ring_map_digest;
    Alcotest.test_case "ring membership: join/leave move only the member's arcs" `Quick
      ring_dynamic_membership;
    Alcotest.test_case "frame round-trip" `Quick frame_roundtrip;
    Alcotest.test_case "frame CRC rejects corruption; Eof on close" `Quick frame_corrupt_and_eof;
    QCheck_alcotest.to_alcotest prop_frame_decode_fuzz;
    QCheck_alcotest.to_alcotest prop_proto_decode_fuzz;
    Alcotest.test_case "protocol messages round-trip" `Quick proto_roundtrip;
    Alcotest.test_case "job fingerprint tracks every parameter" `Quick fingerprint_sensitivity;
    Alcotest.test_case "transport address parsing" `Quick transport_parse;
    Alcotest.test_case "transport TCP listen/dial/frame; typed dial failure" `Quick
      transport_tcp_dial;
    Alcotest.test_case "auth hmac" `Quick auth_hmac;
    Alcotest.test_case "auth handshake: matching keys accepted" `Quick auth_handshake_ok;
    Alcotest.test_case "auth handshake: wrong key is typed E-AUTH" `Quick auth_wrong_key;
    Alcotest.test_case "auth handshake: replay and version mismatch rejected" `Quick
      auth_replay_and_version;
    Alcotest.test_case "trace store round-trip; corruption is a miss" `Quick store_roundtrip;
    Alcotest.test_case "merged partials bit-identical to compute" `Quick
      partial_merge_bit_identity;
    Alcotest.test_case "3-worker run bit-identical to single-process" `Quick coord_bit_identity;
    Alcotest.test_case "worker kill: failover, no source lost" `Quick coord_kill_failover;
    Alcotest.test_case "membership churn: joins and leaves keep bit-identity" `Quick
      coord_membership;
    Alcotest.test_case "signal storm: EINTR never kills a live worker" `Quick coord_signal_storm;
    QCheck_alcotest.to_alcotest prop_single_kill_schedules;
    Alcotest.test_case "fleet telemetry: merged totals, segments, live scrape" `Quick
      coord_fleet_telemetry;
    Alcotest.test_case "exit-code precedence 124 > 3 > 0" `Quick exit_code_precedence;
    Alcotest.test_case "shard fault schedules deterministic" `Quick shard_schedule_properties;
  ]
