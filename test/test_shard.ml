(* The multi-process shard layer: ring placement, wire framing, the
   protocol round-trip, the per-source partial merge, and the
   coordinator's end-to-end guarantees — a 3-worker run is
   bit-identical to the single-process driver, and stays bit-identical
   (with every source accounted for exactly once) under any single
   worker-kill/restart schedule. *)

module Ring = Omn_shard.Ring
module Frame = Omn_shard.Frame
module Proto = Omn_shard.Proto
module Coord = Omn_shard.Coord
module Faultgen = Omn_robust.Faultgen
module S = Omn_resilience.Supervise
module Delay_cdf = Omn_core.Delay_cdf
module Trace_io = Omn_temporal.Trace_io
module Rng = Omn_stats.Rng

let curves_equal (a : Delay_cdf.curves) (b : Delay_cdf.curves) =
  a.grid = b.grid && a.hop_success = b.hop_success && a.hop_success_inf = b.hop_success_inf
  && a.flood_success = b.flood_success && a.flood_success_inf = b.flood_success_inf
  && a.max_rounds_used = b.max_rounds_used

(* --- Ring --- *)

let ring_assign_deterministic () =
  let r = Ring.create ~workers:4 () in
  let alive = [ 0; 1; 2; 3 ] in
  let sources = List.init 50 Fun.id in
  let m1 = List.map (Ring.assign r ~alive) sources in
  let m2 = List.map (Ring.assign (Ring.create ~workers:4 ()) ~alive) sources in
  Alcotest.(check (list int)) "same assignment from a fresh ring" m1 m2;
  List.iter
    (fun w -> Alcotest.(check bool) "owner is a live worker" true (w >= 0 && w < 4))
    m1;
  (* every worker owns something at 50 sources and 64 vnodes *)
  List.iter
    (fun w -> Alcotest.(check bool) (Printf.sprintf "worker %d owns sources" w) true (List.mem w m1))
    alive

let ring_successor_moves_only_dead () =
  let r = Ring.create ~workers:4 () in
  let all = [ 0; 1; 2; 3 ] in
  let sources = List.init 80 Fun.id in
  let dead = 2 in
  let alive = List.filter (fun w -> w <> dead) all in
  List.iter
    (fun s ->
      let before = Ring.assign r ~alive:all s in
      let after = Ring.assign r ~alive s in
      if before <> dead then
        Alcotest.(check int) (Printf.sprintf "source %d stays put" s) before after
      else Alcotest.(check bool) "moved to a survivor" true (List.mem after alive))
    sources;
  (* the dead worker's sources spread over more than one successor *)
  let moved =
    List.filter_map
      (fun s -> if Ring.assign r ~alive:all s = dead then Some (Ring.assign r ~alive s) else None)
      sources
  in
  Alcotest.(check bool) "vnodes spread the failover load" true
    (List.length (List.sort_uniq compare moved) > 1)

let ring_validation () =
  (match Ring.create ~workers:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "workers=0 accepted");
  let r = Ring.create ~workers:2 () in
  (match Ring.assign r ~alive:[] 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty alive accepted");
  match Ring.assign r ~alive:[ 0; 5 ] 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown worker accepted"

let ring_map_digest () =
  let r = Ring.create ~workers:3 () in
  let sources = List.init 20 Fun.id in
  let d1 = Ring.map_sha256 r ~alive:[ 0; 1; 2 ] ~sources in
  let d2 = Ring.map_sha256 r ~alive:[ 0; 1; 2 ] ~sources in
  Alcotest.(check string) "digest stable" d1 d2;
  Alcotest.(check int) "hex sha256" 64 (String.length d1);
  let d3 = Ring.map_sha256 r ~alive:[ 0; 1 ] ~sources in
  Alcotest.(check bool) "digest tracks the assignment" true (d1 <> d3)

(* --- Frame --- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let frame_roundtrip () =
  with_socketpair @@ fun a b ->
  let payload = "the quick brown fox \x00\xff jumps" in
  Frame.write a payload;
  Frame.write a "";
  (match Frame.read b with
  | Ok s -> Alcotest.(check string) "payload intact" payload s
  | Error _ -> Alcotest.fail "clean frame rejected");
  match Frame.read b with
  | Ok s -> Alcotest.(check string) "empty payload ok" "" s
  | Error _ -> Alcotest.fail "empty frame rejected"

let frame_corrupt_and_eof () =
  with_socketpair @@ fun a b ->
  Frame.write a "payload-to-mangle";
  (match Frame.read ~mangle:true b with
  | Error `Corrupt -> ()
  | Ok _ -> Alcotest.fail "mangled frame passed the CRC"
  | Error _ -> Alcotest.fail "mangled frame misclassified");
  Unix.close a;
  match Frame.read b with
  | Error `Eof -> ()
  | _ -> Alcotest.fail "closed peer must read as Eof"

(* --- Proto --- *)

let proto_roundtrip () =
  let job =
    {
      Proto.trace_text = "trace"; max_hops = 4; dests = Some [ 1; 2 ]; grid = Some [| 1.; 2. |];
      windows = Some [ (0., 10.) ]; supervise = Some (2, 0.05, 1., 0); ckpt_path = None;
      fingerprint = "fp"; domains = 2;
    }
  in
  List.iter
    (fun m ->
      match Proto.decode_to_worker (Proto.encode_to_worker m) with
      | Ok m' -> Alcotest.(check bool) "to_worker round-trips" true (m = m')
      | Error e -> Alcotest.failf "to_worker decode failed: %s" e)
    [ Proto.Job job; Proto.Compute { slot = 3; source = 7 }; Proto.Ping; Proto.Shutdown ];
  List.iter
    (fun m ->
      match Proto.decode_from_worker (Proto.encode_from_worker m) with
      | Ok m' -> Alcotest.(check bool) "from_worker round-trips" true (m = m')
      | Error e -> Alcotest.failf "from_worker decode failed: %s" e)
    [
      Proto.Hello { worker = 1 }; Proto.Ready { worker = 1; resumed = 4 };
      Proto.Result { slot = 0; source = 5; partial = "bytes" };
      Proto.Failed { slot = 1; source = 6; attempts = 3; reason = "poison" }; Proto.Pong;
    ];
  match Proto.decode_to_worker "not a marshal payload" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded"

let fingerprint_sensitivity () =
  let fp ?(trace = "t") ?(max_hops = 10) ?dests ?grid ?windows () =
    Proto.job_fingerprint ~trace_text:trace ~max_hops ~dests ~grid ~windows
  in
  let base = fp () in
  Alcotest.(check string) "deterministic" base (fp ());
  List.iter
    (fun (what, other) -> Alcotest.(check bool) (what ^ " changes it") true (other <> base))
    [
      ("trace", fp ~trace:"u" ()); ("max_hops", fp ~max_hops:9 ());
      ("dests", fp ~dests:[ 0 ] ()); ("grid", fp ~grid:[| 1. |] ());
      ("windows", fp ~windows:[ (0., 1.) ] ());
    ]

(* --- partial merge --- *)

let trace = Util.random_trace (Rng.create 1731) ~n:10 ~m:60 ~horizon:120
let grid = [| 1.; 5.; 20.; 60.; 120. |]
let max_hops = 3
let sources = Delay_cdf.uniform_order (List.init 10 Fun.id)
let reference = Delay_cdf.compute ~max_hops ~grid ~sources trace

let partial_merge_bit_identity () =
  let m = Delay_cdf.merger_create ~max_hops ~grid () in
  List.iter
    (fun s ->
      let p = Delay_cdf.source_partial ~max_hops ~grid trace s in
      (* through the wire representation, like a real worker *)
      match Delay_cdf.partial_of_string (Delay_cdf.partial_to_string p) with
      | Ok p -> Delay_cdf.merger_add m p
      | Error e -> Alcotest.failf "partial round-trip failed: %s" e)
    sources;
  Alcotest.(check bool) "merged partials bit-identical to compute" true
    (curves_equal (Delay_cdf.merger_curves m) reference);
  match Delay_cdf.partial_of_string "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage partial decoded"

(* --- the coordinator, end to end --- *)

(* [Spawn_exec] re-executes this test binary, which doubles as its own
   worker (see the escape hatch in [Test_main]). [Spawn_fork] would be
   cheaper but is illegal here: suites that ran earlier created domains,
   and OCaml 5 forbids [Unix.fork] in a multi-domain process. *)
(* max_inflight = 2 keeps dispatch behind the chaos schedules below: a
   victim is always killed while it still has undispatched sources, so
   failover is required for completion rather than a timing accident. *)
let shard_cfg ~workers =
  {
    (Coord.default ~workers) with
    Coord.heartbeat_interval = 0.05;
    heartbeat_timeout = 2.;
    respawn_backoff = 0.01;
    max_inflight = 2;
  }

let run_ok ?(cfg = shard_cfg ~workers:3) () =
  match Coord.run ~max_hops ~grid cfg trace with
  | Ok v -> v
  | Error e -> Alcotest.failf "sharded run failed: %s" (Omn_robust.Err.to_string e)

let coord_bit_identity () =
  let curves, p, st = run_ok () in
  Alcotest.(check bool) "complete" false p.Delay_cdf.partial;
  Alcotest.(check int) "every source accounted for" 10 p.Delay_cdf.sources_done;
  Alcotest.(check (list int)) "nothing degraded" []
    (List.map (fun (f : S.failure) -> f.S.item) p.Delay_cdf.degraded);
  Alcotest.(check bool) "bit-identical to single-process" true (curves_equal curves reference);
  Alcotest.(check int) "exactly one spawn per worker" 3 st.Coord.spawns;
  Alcotest.(check int) "hex shard map digest" 64 (String.length st.Coord.shard_map_sha256)

(* Kill ALL workers early in a 40-source run. With the 2-source
   in-flight window, at most 6 initial + 3 ack-freed dispatches can
   precede the last kill, so every victim strands undispatched work —
   completion then requires a respawn, a reassignment and a rejoin,
   deterministically (a lone kill can be absorbed by results already in
   the socket buffer, which is correct but unobservable). *)
let coord_kill_failover () =
  let big_trace = Util.random_trace (Rng.create 97) ~n:40 ~m:200 ~horizon:200 in
  let big_sources = Delay_cdf.uniform_order (List.init 40 Fun.id) in
  let big_reference = Delay_cdf.compute ~max_hops ~grid ~sources:big_sources big_trace in
  let chaos =
    List.map
      (fun v -> { Faultgen.after_results = 1 + v; victim = v; shard_fault = Faultgen.Worker_kill })
      [ 0; 1; 2 ]
  in
  let ckpt_dir = Filename.temp_file "omn_shard" ".d" in
  Sys.remove ckpt_dir;
  Unix.mkdir ckpt_dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> try Sys.remove (Filename.concat ckpt_dir f) with Sys_error _ -> ())
        (Sys.readdir ckpt_dir);
      try Unix.rmdir ckpt_dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let cfg = { (shard_cfg ~workers:3) with Coord.chaos; ckpt_dir = Some ckpt_dir } in
  match Coord.run ~max_hops ~grid cfg big_trace with
  | Error e -> Alcotest.failf "sharded run failed: %s" (Omn_robust.Err.to_string e)
  | Ok (curves, p, st) ->
    Alcotest.(check bool) "complete despite every worker dying" false p.Delay_cdf.partial;
    Alcotest.(check int) "no source lost" 40 p.Delay_cdf.sources_done;
    Alcotest.(check bool) "bit-identical after failover" true (curves_equal curves big_reference);
    Alcotest.(check bool) "respawn happened" true (st.Coord.spawns > 3);
    Alcotest.(check bool) "reassignment recorded" true (st.Coord.reassigned > 0);
    Alcotest.(check bool) "a respawned worker rejoined" true (st.Coord.rejoins > 0)

(* Property: any single worker-kill/restart schedule — whichever victim,
   whenever it fires — yields bit-identical curves with every source
   merged exactly once (at-most-once accounting absorbs reassignment
   races as counted duplicate drops, never double merges). *)
let prop_single_kill_schedules =
  QCheck2.Test.make ~count:6 ~name:"single worker-kill schedules: bit-identical, no double count"
    QCheck2.Gen.(pair (int_range 0 8) (int_range 0 2))
    (fun (after_results, victim) ->
      let chaos = [ { Faultgen.after_results; victim; shard_fault = Faultgen.Worker_kill } ] in
      match Coord.run ~max_hops ~grid { (shard_cfg ~workers:3) with Coord.chaos } trace with
      | Error e -> QCheck2.Test.fail_reportf "run failed: %s" (Omn_robust.Err.to_string e)
      | Ok (curves, p, st) ->
        if p.Delay_cdf.partial then QCheck2.Test.fail_report "spurious partial";
        if p.Delay_cdf.sources_done <> 10 then
          QCheck2.Test.fail_reportf "%d/10 sources merged (duplicates dropped: %d)"
            p.Delay_cdf.sources_done st.Coord.duplicates;
        curves_equal curves reference)

(* --- exit-code precedence --- *)

let exit_code_precedence () =
  Alcotest.(check int) "partial beats degraded" 124 (S.exit_code ~partial:true ~degraded:true);
  Alcotest.(check int) "partial alone" 124 (S.exit_code ~partial:true ~degraded:false);
  Alcotest.(check int) "degraded-but-complete" 3 (S.exit_code ~partial:false ~degraded:true);
  Alcotest.(check int) "clean" 0 (S.exit_code ~partial:false ~degraded:false)

(* --- Faultgen shard schedules --- *)

let shard_schedule_properties () =
  let sched = Faultgen.shard_schedule ~seed:9 ~workers:3 ~results:20 4 in
  Alcotest.(check int) "requested length" 4 (List.length sched);
  Alcotest.(check bool) "deterministic" true
    (sched = Faultgen.shard_schedule ~seed:9 ~workers:3 ~results:20 4);
  Alcotest.(check bool) "seed matters" true
    (sched <> Faultgen.shard_schedule ~seed:10 ~workers:3 ~results:20 4);
  let points = List.map (fun (e : Faultgen.shard_event) -> e.Faultgen.after_results) sched in
  Alcotest.(check (list int)) "ascending distinct trigger points" (List.sort_uniq compare points)
    points;
  List.iter
    (fun (e : Faultgen.shard_event) ->
      Alcotest.(check bool) "in the first half" true
        (e.Faultgen.after_results >= 0 && e.Faultgen.after_results <= 10);
      Alcotest.(check bool) "victim in range" true
        (e.Faultgen.victim >= 0 && e.Faultgen.victim < 3))
    sched;
  (match Faultgen.shard_schedule ~seed:1 ~workers:0 ~results:10 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "workers=0 accepted");
  (match Faultgen.shard_schedule ~seed:1 ~workers:2 ~results:10 ~kinds:[] 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty kinds accepted");
  List.iter
    (fun n ->
      match Faultgen.shard_fault_of_name n with
      | Some f -> Alcotest.(check string) "name round-trips" n (Faultgen.shard_fault_name f)
      | None -> Alcotest.failf "%s not parsed" n)
    Faultgen.shard_fault_names

let suite =
  [
    Alcotest.test_case "ring assignment deterministic" `Quick ring_assign_deterministic;
    Alcotest.test_case "ring death moves only the dead worker's sources" `Quick
      ring_successor_moves_only_dead;
    Alcotest.test_case "ring rejects malformed arguments" `Quick ring_validation;
    Alcotest.test_case "ring map digest tracks the assignment" `Quick ring_map_digest;
    Alcotest.test_case "frame round-trip" `Quick frame_roundtrip;
    Alcotest.test_case "frame CRC rejects corruption; Eof on close" `Quick frame_corrupt_and_eof;
    Alcotest.test_case "protocol messages round-trip" `Quick proto_roundtrip;
    Alcotest.test_case "job fingerprint tracks every parameter" `Quick fingerprint_sensitivity;
    Alcotest.test_case "merged partials bit-identical to compute" `Quick
      partial_merge_bit_identity;
    Alcotest.test_case "3-worker run bit-identical to single-process" `Quick coord_bit_identity;
    Alcotest.test_case "worker kill: failover, no source lost" `Quick coord_kill_failover;
    QCheck_alcotest.to_alcotest prop_single_kill_schedules;
    Alcotest.test_case "exit-code precedence 124 > 3 > 0" `Quick exit_code_precedence;
    Alcotest.test_case "shard fault schedules deterministic" `Quick shard_schedule_properties;
  ]
