open Omn_forwarding
module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace

let trace_gen =
  QCheck2.Gen.(
    let* n = int_range 3 7 in
    let* m = int_range 2 25 in
    let* seed = int in
    return (Util.random_trace (Rng.create seed) ~n ~m ~horizon:40))

(* Epidemic is exact: its delivery time equals the earliest arrival of a
   TTL-bounded time-respecting path (Bellman-Ford gold standard). *)
let epidemic_matches_bounded_dijkstra =
  QCheck2.Test.make ~count:150 ~name:"epidemic(ttl) = bounded earliest arrival"
    QCheck2.Gen.(triple trace_gen (int_range 1 4) (float_range 0. 30.))
    (fun (trace, ttl, t0) ->
      let n = Trace.n_nodes trace in
      let rows = Omn_baseline.Dijkstra.earliest_arrival_bounded trace ~source:0 ~t0 ~max_hops:ttl in
      let ok = ref true in
      for dest = 1 to n - 1 do
        let o =
          Sim.run trace ~protocol:(Protocol.Epidemic { ttl = Some ttl }) ~source:0 ~dest ~t0
            ~deadline:100.
        in
        let expected = rows.(ttl).(dest) -. t0 in
        let expected = if expected > 100. then infinity else expected in
        if o.delay <> expected then ok := false;
        if o.delivered && o.hops > ttl then ok := false
      done;
      !ok)

let epidemic_unlimited_matches_dijkstra =
  QCheck2.Test.make ~count:150 ~name:"epidemic(unlimited) = earliest arrival"
    QCheck2.Gen.(pair trace_gen (float_range 0. 30.))
    (fun (trace, t0) ->
      let n = Trace.n_nodes trace in
      let arrival = Omn_baseline.Dijkstra.earliest_arrival trace ~source:0 ~t0 in
      let ok = ref true in
      for dest = 1 to n - 1 do
        let o =
          Sim.run trace ~protocol:(Protocol.Epidemic { ttl = None }) ~source:0 ~dest ~t0
            ~deadline:200.
        in
        let expected = arrival.(dest) -. t0 in
        let expected = if expected > 200. then infinity else expected in
        if o.delay <> expected then ok := false
      done;
      !ok)

(* Protocol dominance: wider TTL never hurts; epidemic dominates every
   other protocol's delay. *)
let ttl_monotone =
  QCheck2.Test.make ~count:100 ~name:"delay non-increasing in TTL"
    QCheck2.Gen.(pair trace_gen (float_range 0. 30.))
    (fun (trace, t0) ->
      let delay ttl =
        (Sim.run trace ~protocol:(Protocol.Epidemic { ttl = Some ttl }) ~source:0 ~dest:1 ~t0
           ~deadline:100.)
          .delay
      in
      delay 1 >= delay 2 && delay 2 >= delay 4)

let epidemic_dominates =
  QCheck2.Test.make ~count:100 ~name:"epidemic delivers no later than any protocol"
    QCheck2.Gen.(pair trace_gen (float_range 0. 30.))
    (fun (trace, t0) ->
      let flood =
        Sim.run trace ~protocol:(Protocol.Epidemic { ttl = None }) ~source:0 ~dest:1 ~t0
          ~deadline:100.
      in
      List.for_all
        (fun protocol ->
          let o = Sim.run trace ~protocol ~source:0 ~dest:1 ~t0 ~deadline:100. in
          flood.delay <= o.delay)
        [
          Protocol.Direct; Protocol.Two_hop; Protocol.Spray_and_wait { copies = 4 };
          Protocol.First_contact; Protocol.Last_encounter;
        ])

(* Structural invariants across protocols. *)
let outcomes_sane =
  QCheck2.Test.make ~count:100 ~name:"outcome invariants (hops/copies/transmissions)"
    QCheck2.Gen.(pair trace_gen (float_range 0. 30.))
    (fun (trace, t0) ->
      let n = Trace.n_nodes trace in
      List.for_all
        (fun protocol ->
          let o = Sim.run trace ~protocol ~source:0 ~dest:1 ~t0 ~deadline:100. in
          o.nodes_reached >= 1
          && o.nodes_reached <= n
          && o.transmissions >= o.nodes_reached - 1
          && (match (o.delivered, Protocol.hop_bound protocol) with
             | true, Some bound -> o.hops <= bound
             | _ -> true)
          && ((not o.delivered) || o.delay >= 0.))
        [
          Protocol.Epidemic { ttl = None }; Protocol.Epidemic { ttl = Some 2 }; Protocol.Direct;
          Protocol.Two_hop; Protocol.Spray_and_wait { copies = 5 }; Protocol.First_contact;
          Protocol.Last_encounter;
        ])

(* Hand-built scenarios. *)
let direct_only_src_dst () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.); (1, 2, 5., 6.) ] in
  let o = Sim.run trace ~protocol:Protocol.Direct ~source:0 ~dest:2 ~t0:0. ~deadline:50. in
  Alcotest.(check bool) "relaying disabled" false o.delivered;
  let o2 = Sim.run trace ~protocol:(Protocol.Epidemic { ttl = None }) ~source:0 ~dest:2 ~t0:0. ~deadline:50. in
  Alcotest.(check bool) "epidemic relays" true o2.delivered;
  Util.check_float "delay" 5. o2.delay

let two_hop_limits () =
  (* Chain 0-1-2-3 in time order: two-hop cannot span three relays. *)
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.); (1, 2, 2., 3.); (2, 3, 4., 5.) ] in
  let o = Sim.run trace ~protocol:Protocol.Two_hop ~source:0 ~dest:3 ~t0:0. ~deadline:50. in
  Alcotest.(check bool) "3 hops needed, two-hop fails" false o.delivered;
  let o2 = Sim.run trace ~protocol:Protocol.Two_hop ~source:0 ~dest:2 ~t0:0. ~deadline:50. in
  Alcotest.(check bool) "2 hops ok" true o2.delivered

let spray_budget () =
  (* Source with 2 copies: one handover, then wait. *)
  let trace =
    Util.trace_of_contacts [ (0, 1, 0., 1.); (0, 2, 2., 3.); (1, 3, 4., 5.); (2, 3, 6., 7.) ]
  in
  let o =
    Sim.run trace ~protocol:(Protocol.Spray_and_wait { copies = 2 }) ~source:0 ~dest:3 ~t0:0.
      ~deadline:50.
  in
  (* 0 gives a copy to 1 (spending half the budget), keeps one copy so it
     cannot spray 2; 1 waits and meets 3 at t=4. *)
  Alcotest.(check bool) "delivered" true o.delivered;
  Util.check_float "via first relay" 4. o.delay;
  Alcotest.(check int) "nodes reached" 3 o.nodes_reached

let last_encounter_greedy () =
  (* dest = 2. Node 1 met 2 recently; node 3 never did. The copy must
     refuse 3 and ride 1. *)
  let trace =
    Util.trace_of_contacts
      [
        (1, 2, 0., 1.);   (* 1 meets the destination early *)
        (0, 3, 5., 6.);   (* 0 meets 3: no recency, refuse *)
        (0, 1, 8., 9.);   (* 0 meets 1: forward *)
        (3, 2, 20., 21.); (* 3 could have delivered sooner... *)
        (1, 2, 30., 31.); (* ...but the copy sits with 1 until here *)
      ]
  in
  let o =
    Sim.run trace ~protocol:Protocol.Last_encounter ~source:0 ~dest:2 ~t0:2. ~deadline:50.
  in
  Alcotest.(check bool) "delivered" true o.delivered;
  Util.check_float "via node 1 at t=30" 28. o.delay;
  Alcotest.(check int) "two hops" 2 o.hops

let last_encounter_uses_history () =
  (* Encounters before the message creation time still inform routing. *)
  let trace = Util.trace_of_contacts [ (1, 2, 0., 1.); (0, 1, 10., 11.); (1, 2, 15., 16.) ] in
  let o =
    Sim.run trace ~protocol:Protocol.Last_encounter ~source:0 ~dest:2 ~t0:9. ~deadline:50.
  in
  Alcotest.(check bool) "delivered" true o.delivered;
  Util.check_float "delay" 6. o.delay

let validation () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 1.) ] in
  let expect_invalid name f =
    match f () with exception Invalid_argument _ -> () | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "source = dest" (fun () ->
      Sim.run trace ~protocol:Protocol.Direct ~source:0 ~dest:0 ~t0:0. ~deadline:1.);
  expect_invalid "negative deadline" (fun () ->
      Sim.run trace ~protocol:Protocol.Direct ~source:0 ~dest:1 ~t0:0. ~deadline:(-1.));
  expect_invalid "zero copies" (fun () ->
      Sim.run trace ~protocol:(Protocol.Spray_and_wait { copies = 0 }) ~source:0 ~dest:1 ~t0:0.
        ~deadline:1.)

let evaluate_shapes () =
  let trace = Util.random_trace (Rng.create 77) ~n:8 ~m:60 ~horizon:100 in
  let stats =
    Sim.evaluate (Rng.create 1) trace
      ~protocols:[ Protocol.Epidemic { ttl = None }; Protocol.Direct ]
      ~messages:50 ~deadline:60.
  in
  match stats with
  | [ epidemic; direct ] ->
    Alcotest.(check bool) "epidemic >= direct delivery" true
      (epidemic.delivered_ratio >= direct.delivered_ratio);
    Alcotest.(check int) "messages recorded" 50 epidemic.messages
  | _ -> Alcotest.fail "expected two stats"

(* omn_parallel determinism contract: evaluate under 2 domains must
   produce exactly the sequential stats (same RNG workload, per-message
   outcomes folded in message order). *)
let evaluate_parallel_bit_identical () =
  let trace = Util.random_trace (Rng.create 78) ~n:8 ~m:60 ~horizon:100 in
  let protocols = [ Protocol.Epidemic { ttl = Some 3 }; Protocol.Two_hop; Protocol.Direct ] in
  let eval ?pool ?domains () =
    Sim.evaluate ?pool ?domains (Rng.create 4) trace ~protocols ~messages:40 ~deadline:60.
  in
  let seq = eval () in
  Alcotest.(check bool) "~domains:2 bit-identical" true (eval ~domains:2 () = seq);
  Omn_parallel.Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check bool) "shared pool bit-identical" true (eval ~pool () = seq))

let suite =
  [
    Alcotest.test_case "direct only src->dst" `Quick direct_only_src_dst;
    Alcotest.test_case "two-hop hop limit" `Quick two_hop_limits;
    Alcotest.test_case "spray budget" `Quick spray_budget;
    Alcotest.test_case "last-encounter greedy choice" `Quick last_encounter_greedy;
    Alcotest.test_case "last-encounter uses pre-message history" `Quick
      last_encounter_uses_history;
    Alcotest.test_case "input validation" `Quick validation;
    Alcotest.test_case "evaluate aggregates" `Quick evaluate_shapes;
    Alcotest.test_case "parallel evaluate bit-identical" `Quick evaluate_parallel_bit_identical;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        epidemic_matches_bounded_dijkstra; epidemic_unlimited_matches_dijkstra; ttl_monotone;
        epidemic_dominates; outcomes_sane;
      ]
