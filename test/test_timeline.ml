(* Timeline ring-buffer semantics (overflow, concurrency, disabled
   no-op), the Chrome trace exporter, provenance manifests, SHA-256,
   the report analyzer — and the contract that tracing never perturbs
   computed results. *)

module Timeline = Omn_obs.Timeline
module Trace_export = Omn_obs.Trace_export
module Manifest = Omn_obs.Manifest
module Report = Omn_obs.Report
module Sha256 = Omn_obs.Sha256
module Json = Omn_obs.Json
module Metrics = Omn_obs.Metrics
module Rng = Omn_stats.Rng

let fresh ?capacity () =
  let tl = Timeline.create ?capacity () in
  Timeline.set_enabled ~tl true;
  tl

let mark tl i = Timeline.record ~tl ~ts:(float_of_int i) (Timeline.Mark { name = Printf.sprintf "m%d" i })

let name_of (e : Timeline.entry) =
  match e.ev with Timeline.Mark { name } -> name | _ -> Alcotest.fail "expected a Mark"

(* -- ring semantics ------------------------------------------------------- *)

let test_overflow_exact () =
  let tl = fresh ~capacity:8 () in
  for i = 0 to 19 do
    mark tl i
  done;
  let v = Timeline.snapshot ~tl () in
  Alcotest.(check int) "kept = capacity" 8 (List.length v.events);
  Alcotest.(check int) "dropped exact" 12 (Timeline.total_dropped v);
  (* drop-oldest: the survivors are the last 8 records, in order *)
  Alcotest.(check (list string)) "newest survive, ordered"
    (List.init 8 (fun i -> Printf.sprintf "m%d" (12 + i)))
    (List.map (fun (_, e) -> name_of e) v.events);
  Timeline.reset ~tl ();
  let v = Timeline.snapshot ~tl () in
  Alcotest.(check int) "reset empties" 0 (List.length v.events);
  Alcotest.(check int) "reset zeroes dropped" 0 (Timeline.total_dropped v)

let test_disabled_noop () =
  let tl = Timeline.create ~capacity:4 () in
  Alcotest.(check bool) "starts disabled" false (Timeline.enabled ~tl ());
  for i = 0 to 9 do
    mark tl i
  done;
  let v = Timeline.snapshot ~tl () in
  Alcotest.(check int) "nothing recorded" 0 (List.length v.events);
  Alcotest.(check int) "nothing dropped" 0 (Timeline.total_dropped v)

(* Four domains hammer one timeline past overflow. Rings are per-domain,
   so each domain's slice must contain only its own marks, in order,
   with an exact dropped count — any cross-domain mixing or a torn entry
   would break the name/index pattern. *)
let test_concurrent_no_tearing () =
  let tl = fresh ~capacity:64 () in
  let per_domain = 200 in
  let writer tag () =
    for j = 0 to per_domain - 1 do
      Timeline.record ~tl ~ts:(float_of_int j)
        (Timeline.Mark { name = Printf.sprintf "d%d-%d" tag j })
    done
  in
  let others = Array.init 3 (fun i -> Domain.spawn (writer (i + 1))) in
  writer 0 ();
  Array.iter Domain.join others;
  let v = Timeline.snapshot ~tl () in
  let by_domain = Hashtbl.create 8 in
  List.iter
    (fun (d, e) ->
      Hashtbl.replace by_domain d (name_of e :: Option.value ~default:[] (Hashtbl.find_opt by_domain d)))
    v.events;
  Alcotest.(check int) "four rings" 4 (Hashtbl.length by_domain);
  Hashtbl.iter
    (fun _ names_rev ->
      let names = List.rev names_rev in
      Alcotest.(check int) "ring full" 64 (List.length names);
      (* all marks in one ring carry the same writer tag... *)
      let tag = List.hd (String.split_on_char '-' (List.hd names)) in
      (* ...and their indices are exactly the last [capacity] writes *)
      Alcotest.(check (list string)) "own marks only, newest, ordered"
        (List.init 64 (fun i -> Printf.sprintf "%s-%d" tag (per_domain - 64 + i)))
        names)
    by_domain;
  Alcotest.(check int) "dropped exact across domains"
    (4 * (per_domain - 64))
    (Timeline.total_dropped v);
  List.iter
    (fun (_, n) -> Alcotest.(check int) "dropped exact per domain" (per_domain - 64) n)
    v.dropped

(* -- Chrome trace export -------------------------------------------------- *)

let events_named name trace_json =
  match Option.bind (Json.member "traceEvents" trace_json) Json.to_list with
  | None -> Alcotest.fail "no traceEvents"
  | Some evs ->
    List.filter
      (fun e -> Option.bind (Json.member "name" e) Json.to_str = Some name)
      evs

let test_export_roundtrip () =
  let tl = fresh () in
  Timeline.record ~tl ~ts:2.0 (Timeline.Chunk { index = 0; items = 8; start = 1.0 });
  Timeline.record ~tl ~ts:1.8 (Timeline.Pool_work { start = 1.2; stolen = true });
  Timeline.record ~tl ~ts:1.5 Timeline.Steal;
  Timeline.record ~tl ~ts:1.6 (Timeline.Queue_wait { seconds = 0.1 });
  Timeline.record ~tl ~ts:3.0 (Timeline.Ckpt_write { path = "x.ckpt"; seconds = 0.5 });
  Timeline.record ~tl ~ts:3.1 (Timeline.Ckpt_rotate { path = "x.ckpt" });
  Timeline.record ~tl ~ts:3.2 (Timeline.Retry { item = 4; attempt = 1 });
  Timeline.record ~tl ~ts:3.3 (Timeline.Quarantine { item = 4; attempts = 3 });
  Timeline.record ~tl ~ts:3.4 (Timeline.Io_retry { op = "read" });
  Timeline.record ~tl ~ts:3.5 (Timeline.Gc_sample { minor = 1; major = 2; heap_words = 1000 });
  let manifest = Manifest.to_json (Manifest.create ~cmdline:[ "omn"; "test" ] ~version:"test" ()) in
  let json = Trace_export.to_json ~manifest (Timeline.snapshot ~tl ()) in
  (* what --trace-out writes is what any JSON consumer can read back *)
  let json =
    match Json.of_string (Json.to_string ~pretty:true json) with
    | Ok j -> j
    | Error e -> Alcotest.failf "exported trace does not reparse: %s" e
  in
  (match events_named "chunk" json with
  | [ chunk ] ->
    Alcotest.(check (option string)) "duration event" (Some "X")
      (Option.bind (Json.member "ph" chunk) Json.to_str);
    (* t0 is the earliest start (the chunk's own start, 1.0) *)
    Alcotest.(check (option (float 1e-6))) "anchored at t0" (Some 0.)
      (Option.bind (Json.member "ts" chunk) Json.to_float);
    Alcotest.(check (option (float 1e-3))) "1s duration in us" (Some 1e6)
      (Option.bind (Json.member "dur" chunk) Json.to_float)
  | l -> Alcotest.failf "expected 1 chunk event, got %d" (List.length l));
  (match events_named "pool.work" json with
  | [ w ] ->
    Alcotest.(check (option bool)) "stolen arg" (Some true)
      (Option.bind (Json.member "args" w) (fun a -> Option.bind (Json.member "stolen" a) Json.to_bool))
  | l -> Alcotest.failf "expected 1 pool.work event, got %d" (List.length l));
  (match events_named "gc" json with
  | [ g ] ->
    Alcotest.(check (option string)) "counter event" (Some "C")
      (Option.bind (Json.member "ph" g) Json.to_str)
  | l -> Alcotest.failf "expected 1 gc event, got %d" (List.length l));
  List.iter
    (fun name ->
      match events_named name json with
      | [ _ ] -> ()
      | l -> Alcotest.failf "expected 1 %s event, got %d" name (List.length l))
    [ "steal"; "queue.wait"; "checkpoint.write"; "checkpoint.rotate"; "retry"; "quarantine";
      "io.retry" ];
  Alcotest.(check bool) "a thread_name track exists" true (events_named "thread_name" json <> []);
  let omn = Option.get (Json.member "omn" json) in
  Alcotest.(check (option string)) "schema" (Some Trace_export.schema)
    (Option.bind (Json.member "schema" omn) Json.to_str);
  Alcotest.(check (option int)) "no drops" (Some 0)
    (Option.bind (Json.member "dropped_events" omn) Json.to_int);
  match Option.bind (Json.member "manifest" omn) (fun m -> Result.to_option (Manifest.of_json m)) with
  | Some m -> Alcotest.(check (list string)) "manifest rides along" [ "omn"; "test" ] m.cmdline
  | None -> Alcotest.fail "manifest missing or unreadable in omn block"

(* -- fleet merge ----------------------------------------------------------- *)

let test_fleet_export () =
  let tl = fresh () in
  Timeline.record ~tl ~ts:10.0 (Timeline.Mark { name = "coord-mark" });
  let coordinator = Timeline.snapshot ~tl () in
  (* worker 0's clock runs 5 s ahead of the coordinator's: every shipped
     timestamp (including the embedded span start) must come back
     shifted onto the coordinator clock *)
  let worker =
    {
      Trace_export.fw_worker = 0;
      fw_events =
        [ (0, { Timeline.ts = 15.5; ev = Timeline.Shard_compute { source = 3; start = 15.0 } }) ];
      fw_dropped = [ (0, 2) ];
      fw_offset = 5.0;
      fw_rtt = 0.001;
    }
  in
  let json = Trace_export.fleet_to_json ~coordinator [ worker ] in
  let json =
    match Json.of_string (Json.to_string ~pretty:true json) with
    | Ok j -> j
    | Error e -> Alcotest.failf "fleet trace does not reparse: %s" e
  in
  (match events_named "shard.compute" json with
  | [ c ] ->
    Alcotest.(check (option int)) "worker track is pid 2" (Some 2)
      (Option.bind (Json.member "pid" c) Json.to_int);
    (* corrected start 10.0 coincides with the coordinator mark -> t0,
       so the event lands at ts 0 with its 0.5 s duration intact *)
    Alcotest.(check (option (float 1e-3))) "offset-corrected onto t0" (Some 0.)
      (Option.bind (Json.member "ts" c) Json.to_float);
    Alcotest.(check (option (float 1e-3))) "duration preserved (us)" (Some 5e5)
      (Option.bind (Json.member "dur" c) Json.to_float)
  | l -> Alcotest.failf "expected 1 shard.compute event, got %d" (List.length l));
  (match events_named "coord-mark" json with
  | [ m ] ->
    Alcotest.(check (option int)) "coordinator track is pid 1" (Some 1)
      (Option.bind (Json.member "pid" m) Json.to_int)
  | l -> Alcotest.failf "expected 1 coordinator mark, got %d" (List.length l));
  let pname pid =
    List.find_map
      (fun e ->
        if Option.bind (Json.member "pid" e) Json.to_int = Some pid then
          Option.bind (Json.member "args" e) (fun a -> Option.bind (Json.member "name" a) Json.to_str)
        else None)
      (events_named "process_name" json)
  in
  Alcotest.(check (option string)) "pid 1 named" (Some "omn coordinator") (pname 1);
  Alcotest.(check (option string)) "pid 2 named" (Some "worker 0") (pname 2);
  let omn = Option.get (Json.member "omn" json) in
  Alcotest.(check (option int)) "fleet drops counted" (Some 2)
    (Option.bind (Json.member "dropped_events" omn) Json.to_int);
  match Option.bind (Json.member "fleet" omn) Json.to_list with
  | Some [ f ] ->
    let get k = Json.member k f in
    Alcotest.(check (option int)) "footer worker" (Some 0) (Option.bind (get "worker") Json.to_int);
    Alcotest.(check (option int)) "footer pid" (Some 2) (Option.bind (get "pid") Json.to_int);
    Alcotest.(check (option (float 1e-9))) "footer offset" (Some 5.0)
      (Option.bind (get "clock_offset_s") Json.to_float);
    Alcotest.(check (option (float 1e-9))) "footer rtt" (Some 0.001)
      (Option.bind (get "rtt_s") Json.to_float);
    Alcotest.(check (option int)) "footer events" (Some 1) (Option.bind (get "events") Json.to_int);
    Alcotest.(check (option int)) "footer dropped" (Some 2) (Option.bind (get "dropped") Json.to_int)
  | _ -> Alcotest.fail "omn.fleet footer missing or wrong arity"

let test_report_fleet () =
  let coordinator = Timeline.snapshot ~tl:(fresh ()) () in
  let mk_worker id busy =
    {
      Trace_export.fw_worker = id;
      fw_events =
        [ (0, { Timeline.ts = 10.0 +. busy; ev = Timeline.Shard_compute { source = id; start = 10.0 } }) ];
      fw_dropped = [];
      fw_offset = 0.;
      fw_rtt = 0.0005;
    }
  in
  let timeline = Trace_export.fleet_to_json ~coordinator [ mk_worker 0 2.0; mk_worker 1 0.5 ] in
  let report = Report.build ~timeline () in
  (match Json.member "fleet" report with
  | Some (Json.Obj _ as f) ->
    let worker w k = Option.bind (Json.member "workers" f) (fun ws -> Option.bind (Json.member w ws) (Json.member k)) in
    Alcotest.(check (option (float 1e-6))) "worker 0 busy from its track" (Some 2.0)
      (Option.bind (worker "0" "busy_s") Json.to_float);
    Alcotest.(check (option (float 1e-6))) "worker 1 busy from its track" (Some 0.5)
      (Option.bind (worker "1" "busy_s") Json.to_float);
    Alcotest.(check (option int)) "events counted" (Some 1)
      (Option.bind (worker "0" "events") Json.to_int);
    Alcotest.(check (option (float 1e-6))) "imbalance = max/mean" (Some 1.6)
      (Option.bind (Json.member "imbalance" f) Json.to_float)
  | _ -> Alcotest.fail "fleet section missing from report");
  let buf = Buffer.create 256 in
  Report.pp (Format.formatter_of_buffer buf) report;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "pp renders the fleet table" true
    (let n = String.length s in
     let rec go i = i + 5 <= n && (String.sub s i 5 = "fleet" || go (i + 1)) in
     go 0);
  (* a single-process trace has no fleet section *)
  let solo = Report.build ~timeline:(Trace_export.to_json coordinator) () in
  Alcotest.(check bool) "no fleet section without a fleet footer" true
    (Json.member "fleet" solo = Some Json.Null)

(* -- end-to-end: the instrumented driver ---------------------------------- *)

(* Run the real resumable driver on 2 domains with metrics and timeline
   both live, and check the exported spans account for the measured pool
   busy time: both are computed from the same clock reads, so coverage
   must be essentially exact (>= 95% leaves room for float summation
   order only). *)
let test_e2e_coverage () =
  let trace = Util.random_trace (Rng.create 0x71) ~n:16 ~m:200 ~horizon:80 in
  let m_was = Metrics.enabled () and t_was = Timeline.enabled () in
  Metrics.reset ();
  Timeline.reset ();
  Metrics.set_enabled true;
  Timeline.set_enabled true;
  let outcome =
    Omn_core.Delay_cdf.compute_resumable ~max_hops:4 ~domains:2 ~checkpoint_every:2 trace
  in
  Metrics.set_enabled m_was;
  Timeline.set_enabled t_was;
  let v = Timeline.snapshot () in
  let snap = Metrics.snapshot () in
  (match outcome with
  | Ok (_, p) -> Alcotest.(check bool) "run complete" false p.partial
  | Error e -> Alcotest.failf "driver failed: %s" (Omn_robust.Err.to_string e));
  let work_domains =
    List.sort_uniq compare
      (List.filter_map
         (fun (d, (e : Timeline.entry)) ->
           match e.ev with Timeline.Pool_work _ -> Some d | _ -> None)
         v.events)
  in
  Alcotest.(check int) "one track per domain" 2 (List.length work_domains);
  let chunks =
    List.filter (fun (_, (e : Timeline.entry)) -> match e.ev with Timeline.Chunk _ -> true | _ -> false) v.events
  in
  Alcotest.(check bool) "chunk events present" true (List.length chunks >= 8);
  let span_total =
    List.fold_left
      (fun acc (_, (e : Timeline.entry)) ->
        match e.ev with Timeline.Pool_work { start; _ } -> acc +. (e.ts -. start) | _ -> acc)
      0. v.events
  in
  let busy = Option.value ~default:0. (Metrics.gauge_total snap "pool.busy_seconds") in
  Alcotest.(check bool) "busy time measured" true (busy > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "spans cover >= 95%% of busy time (spans %.6fs, busy %.6fs)" span_total busy)
    true
    (span_total >= 0.95 *. busy);
  Alcotest.(check int) "nothing dropped" 0 (Timeline.total_dropped v)

let test_bit_identity_timeline () =
  let trace = Util.random_trace (Rng.create 0xB17) ~n:8 ~m:60 ~horizon:50 in
  let was = Timeline.enabled () in
  let compute () = Omn_core.Delay_cdf.compute ~max_hops:4 ~domains:2 trace in
  Timeline.set_enabled false;
  let off = compute () in
  Timeline.set_enabled true;
  let on_ = compute () in
  Timeline.set_enabled was;
  Alcotest.(check bool) "delay-cdf curves identical with timeline on/off" true (off = on_)

(* -- manifest ------------------------------------------------------------- *)

let test_manifest_roundtrip () =
  let m =
    Manifest.finish
      (Manifest.create
         ~config:[ ("max_hops", Json.Int 6); ("budget", Json.Null) ]
         ~seed:7 ~trace_sha256:"ab12" ~trace_name:"t" ~n_nodes:3 ~n_contacts:9 ~domains:2
         ~cmdline:[ "omn"; "delay-cdf" ] ~version:"1.0.0-test" ())
  in
  Alcotest.(check bool) "finished stamped" true (m.finished <> None);
  Alcotest.(check bool) "finish idempotent" true (Manifest.finish m = m);
  (* through a string: what the artifacts embed is what report reads *)
  let json =
    match Json.of_string (Json.to_string ~pretty:true (Manifest.to_json m)) with
    | Ok j -> j
    | Error e -> Alcotest.failf "manifest does not reparse: %s" e
  in
  (match Manifest.of_json json with
  | Ok m' -> Alcotest.(check bool) "manifest round-trips" true (m = m')
  | Error e -> Alcotest.failf "of_json: %s" e);
  (* unfinished manifests round-trip their None through null *)
  let m0 = Manifest.create ~cmdline:[ "x" ] ~version:"v" () in
  match Manifest.of_json (Manifest.to_json m0) with
  | Ok m0' -> Alcotest.(check bool) "unfinished round-trips" true (m0 = m0')
  | Error e -> Alcotest.failf "of_json unfinished: %s" e

let test_manifest_window () =
  (* Regression: the committed bench artifact once showed [finished] five
     microseconds after [started] because both were stamped at
     JSON-build time. A manifest created before the work and finished at
     sink time must cover the work's wall clock. *)
  let m0 = Manifest.create ~version:"window-test" () in
  Unix.sleepf 0.05;
  let m = Manifest.finish m0 in
  match m.finished with
  | None -> Alcotest.fail "finish did not stamp"
  | Some fin ->
    Alcotest.(check bool)
      (Printf.sprintf "manifest window covers the run (%.6fs)" (fin -. m.started))
      true
      (fin -. m.started >= 0.04)

(* -- sha256 --------------------------------------------------------------- *)

let test_sha256_vectors () =
  List.iter
    (fun (input, expect) ->
      Alcotest.(check string) (Printf.sprintf "sha256 of %d bytes" (String.length input)) expect
        (Sha256.string input))
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      (* 55/56 straddle the one-vs-two padding blocks boundary *)
      (String.make 55 'a', "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
      (String.make 56 'a', "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
      ( String.make 1_000_000 'a',
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
    ];
  (* file digest = digest of the file's bytes *)
  let tmp = Filename.temp_file "omn-sha" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ()) @@ fun () ->
  Omn_robust.Atomic_file.write_string tmp "abc";
  Alcotest.(check string) "file digest"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" (Sha256.file tmp)

(* -- report --------------------------------------------------------------- *)

let test_report_build () =
  let tl = fresh () in
  Timeline.record ~tl ~ts:1.5 (Timeline.Chunk { index = 0; items = 4; start = 1.0 });
  Timeline.record ~tl ~ts:2.1 (Timeline.Chunk { index = 1; items = 4; start = 1.5 });
  Timeline.record ~tl ~ts:2.0 (Timeline.Pool_work { start = 1.0; stolen = false });
  Timeline.record ~tl ~ts:2.2 (Timeline.Ckpt_write { path = "c"; seconds = 0.2 });
  Timeline.record ~tl ~ts:2.3 (Timeline.Retry { item = 1; attempt = 0 });
  let manifest = Manifest.to_json (Manifest.create ~cmdline:[ "omn" ] ~version:"test" ()) in
  let timeline = Trace_export.to_json ~manifest (Timeline.snapshot ~tl ()) in
  let report = Report.build ~timeline () in
  Alcotest.(check int) "no drops" 0 (Report.dropped_events report);
  (match Option.bind (Json.member "chunks" report) (Json.member "count") with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "chunk count wrong");
  (match Option.bind (Json.member "checkpoints" report) (Json.member "writes") with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "checkpoint writes wrong");
  (match Option.bind (Json.member "resilience" report) (Json.member "retries") with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "retries wrong");
  (match Option.bind (Json.member "manifest" report) (Json.member "cmdline") with
  | Some (Json.List [ Json.String "omn" ]) -> ()
  | _ -> Alcotest.fail "manifest not echoed");
  (* the human renderer accepts what build produces *)
  let buf = Buffer.create 256 in
  Report.pp (Format.formatter_of_buffer buf) report;
  Alcotest.(check bool) "pp renders something" true (Buffer.length buf > 0);
  (* dropped events from the ring surface in the report *)
  let small = fresh ~capacity:2 () in
  for i = 0 to 9 do
    mark small i
  done;
  let tj = Trace_export.to_json (Timeline.snapshot ~tl:small ()) in
  Alcotest.(check int) "drops surface" 8 (Report.dropped_events (Report.build ~timeline:tj ()))

let suite =
  [
    Alcotest.test_case "ring overflow drops oldest, counts exactly" `Quick test_overflow_exact;
    Alcotest.test_case "disabled journal is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "4-domain concurrent recording, no tearing" `Quick
      test_concurrent_no_tearing;
    Alcotest.test_case "chrome trace export round trip" `Quick test_export_roundtrip;
    Alcotest.test_case "fleet merge: offset-corrected per-worker tracks" `Quick test_fleet_export;
    Alcotest.test_case "report fleet section" `Quick test_report_fleet;
    Alcotest.test_case "e2e: spans cover measured busy time" `Quick test_e2e_coverage;
    Alcotest.test_case "bit-identity under tracing" `Quick test_bit_identity_timeline;
    Alcotest.test_case "manifest JSON round trip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "manifest window covers a sleep-bearing run" `Quick test_manifest_window;
    Alcotest.test_case "sha256 FIPS vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "report analyzer" `Quick test_report_build;
  ]
