(* Differential oracle: the fast frontier pipeline vs the exhaustive
   baselines, on hundreds of randomly generated small traces.

   Two independent oracles per instance:
   - hop-bounded: [Journey.frontiers_at_hops] must equal
     [Baseline.Enumerate.frontiers] (exponential DFS over all valid
     contact sequences) frontier-by-frontier;
   - fixpoint: [Frontier.delivery] read off [Journey.run]'s fixpoint must
     equal [Baseline.Dijkstra.earliest_arrival] at every sampled creation
     time, for every destination.

   Traces are drawn from four generator families (integer-grid random
   intervals, Poisson point contacts, random-waypoint motion, venue
   co-location) so the oracle sees ties, instantaneous contacts, long
   overlapping intervals and transitive crowds. Every instance is keyed
   by its seed, which is printed on failure for replay; the batch runs
   under a 2-domain pool, as the pipeline does in production. *)

module Rng = Omn_stats.Rng
module Trace = Omn_temporal.Trace
module Journey = Omn_core.Journey
module Frontier = Omn_core.Frontier
module Enumerate = Omn_baseline.Enumerate
module Dijkstra = Omn_baseline.Dijkstra

let n_instances = 200
let max_contacts = 16 (* keeps Enumerate's DFS trivially small *)
let max_hops = 3

let cap_contacts trace =
  let cs = Trace.contacts trace in
  if Array.length cs <= max_contacts then trace
  else
    Trace.create ~name:(Trace.name trace) ~n_nodes:(Trace.n_nodes trace)
      ~t_start:(Trace.t_start trace) ~t_end:(Trace.t_end trace)
      (Array.to_list (Array.sub cs 0 max_contacts))

let instance seed =
  let rng = Rng.create seed in
  match seed mod 4 with
  | 0 ->
    Util.random_trace rng ~n:(3 + Rng.int rng 4) ~m:(4 + Rng.int rng 11) ~horizon:20
  | 1 ->
    cap_contacts
      (Omn_randnet.Continuous.generate rng
         { n = 3 + Rng.int rng 3; lambda = 0.4; horizon = 10. })
  | 2 ->
    cap_contacts
      (Omn_mobility.Random_waypoint.generate rng
         {
           n = 4;
           area = 120.;
           v_min = 0.5;
           v_max = 1.5;
           mean_pause = 10.;
           range = 40.;
           horizon = 300.;
           dt = 5.;
         })
  | _ ->
    let n = 4 in
    let params = Omn_mobility.Venue.conference_params ~rng ~n ~days:0.1 in
    cap_contacts (Omn_mobility.Venue.generate rng ~n ~name:"diff-venue" params)

(* Creation times to probe the fixpoint at: window edges, outside the
   window on both sides, and a few contact boundaries. *)
let sample_t0s trace =
  let t0 = Trace.t_start trace and t1 = Trace.t_end trace in
  let base = [ t0 -. 1.; t0; (t0 +. t1) /. 2.; t1; t1 +. 1. ] in
  let cs = Trace.contacts trace in
  let extra =
    if Array.length cs = 0 then []
    else
      [
        cs.(0).Omn_temporal.Contact.t_beg;
        cs.(Array.length cs - 1).Omn_temporal.Contact.t_end;
      ]
  in
  base @ extra

let check_instance seed =
  let trace = instance seed in
  let n = Trace.n_nodes trace in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  for source = 0 to n - 1 do
    (* Oracle 1: hop-bounded frontiers vs exhaustive enumeration. *)
    let fast = Journey.frontiers_at_hops trace ~source ~max_hops in
    let exact = Enumerate.frontiers trace ~source ~max_hops in
    Array.iteri
      (fun dest f ->
        if not (Frontier.equal f exact.(dest)) then
          err "seed %d: frontier mismatch (source %d, dest %d, max_hops %d)" seed source
            dest max_hops)
      fast;
    (* Oracle 2: fixpoint delivery vs single-t0 earliest-arrival search. *)
    let fix, _rounds = Journey.run trace ~source in
    List.iter
      (fun t0 ->
        let arrival = Dijkstra.earliest_arrival trace ~source ~t0 in
        for v = 0 to n - 1 do
          let d = Frontier.delivery fix.(v) t0 in
          let a = arrival.(v) in
          if not (d = a || (d = infinity && a = infinity)) then
            err "seed %d: delivery %.17g <> dijkstra %.17g (source %d, dest %d, t0 %.17g)"
              seed d a source v t0
        done)
      (sample_t0s trace)
  done;
  !errs

let test_differential () =
  let seeds = Array.init n_instances (fun i -> 7000 + i) in
  let all_errs =
    Omn_parallel.Pool.with_pool ~domains:2 (fun pool ->
        Omn_parallel.Pool.map pool check_instance seeds)
  in
  let errs = List.concat (Array.to_list all_errs) in
  match errs with
  | [] -> ()
  | first :: _ ->
    Alcotest.failf "%d disagreement(s) across %d instances; first: %s" (List.length errs)
      n_instances first

(* The generator families themselves must produce what the oracles
   assume: a quick well-formedness pass over a sample of each family. *)
let test_families_well_formed () =
  List.iter
    (fun seed ->
      let trace = instance seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: at least 2 nodes" seed)
        true
        (Trace.n_nodes trace >= 2);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: capped" seed)
        true
        (Trace.n_contacts trace <= max_contacts || seed mod 4 = 0);
      Trace.iter
        (fun c ->
          let open Omn_temporal.Contact in
          if not (c.t_beg >= Trace.t_start trace && c.t_end <= Trace.t_end trace) then
            Alcotest.failf "seed %d: contact outside window" seed)
        trace)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let suite =
  [
    Alcotest.test_case "generator families well-formed" `Quick test_families_well_formed;
    Alcotest.test_case "journey vs enumerate vs dijkstra (200 instances)" `Slow
      test_differential;
  ]
