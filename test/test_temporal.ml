module Contact = Omn_temporal.Contact
module Trace = Omn_temporal.Trace
module Trace_io = Omn_temporal.Trace_io
module Trace_stats = Omn_temporal.Trace_stats
module Rng = Omn_stats.Rng

(* --- Contact --- *)

let contact_canonical () =
  let c = Contact.make ~a:5 ~b:2 ~t_beg:1. ~t_end:3. in
  Alcotest.(check int) "a is min" 2 c.a;
  Alcotest.(check int) "b is max" 5 c.b;
  Alcotest.(check (float 0.)) "duration" 2. (Contact.duration c);
  Alcotest.(check int) "peer" 5 (Contact.peer c 2);
  Alcotest.(check bool) "involves" true (Contact.involves c 5);
  Alcotest.(check bool) "not involves" false (Contact.involves c 3)

let contact_rejects () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  expect_invalid "self contact" (fun () -> Contact.make ~a:1 ~b:1 ~t_beg:0. ~t_end:1.);
  expect_invalid "negative id" (fun () -> Contact.make ~a:(-1) ~b:2 ~t_beg:0. ~t_end:1.);
  expect_invalid "reversed interval" (fun () -> Contact.make ~a:0 ~b:1 ~t_beg:2. ~t_end:1.);
  expect_invalid "nan" (fun () -> Contact.make ~a:0 ~b:1 ~t_beg:nan ~t_end:1.)

let contact_point_allowed () =
  let c = Contact.make ~a:0 ~b:1 ~t_beg:5. ~t_end:5. in
  Alcotest.(check (float 0.)) "zero duration" 0. (Contact.duration c)

let contact_overlaps () =
  let c1 = Contact.make ~a:0 ~b:1 ~t_beg:0. ~t_end:2. in
  let c2 = Contact.make ~a:0 ~b:1 ~t_beg:2. ~t_end:4. in
  let c3 = Contact.make ~a:0 ~b:1 ~t_beg:2.5 ~t_end:4. in
  Alcotest.(check bool) "touching intervals overlap" true (Contact.overlaps c1 c2);
  Alcotest.(check bool) "disjoint" false (Contact.overlaps c1 c3)

(* --- Trace --- *)

let trace_rejects () =
  let c = Contact.make ~a:0 ~b:5 ~t_beg:0. ~t_end:1. in
  (match Trace.create ~n_nodes:3 ~t_start:0. ~t_end:1. [ c ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range node accepted");
  match Trace.create ~n_nodes:6 ~t_start:0.5 ~t_end:2. [ c ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "contact outside window accepted"

(* Regression: create_result used to validate only [c.b >= n_nodes]. A
   forged contact — [Marshal] or [Obj.magic] can bypass the private
   constructor's canonicalisation — with a negative or out-of-range [a]
   crashed the adjacency build instead of returning a typed Range
   error. The tuple below has the same runtime representation as the
   [Contact.t] record. *)
let trace_rejects_forged_contact () =
  let forged a b : Contact.t = Obj.magic (a, b, 0.5, 1.0) in
  let expect_range label c =
    match Trace.create_result ~n_nodes:4 ~t_start:0. ~t_end:2. [ c ] with
    | Error (e : Omn_robust.Err.t) ->
      Alcotest.(check bool) (label ^ ": typed Range error") true (e.code = Omn_robust.Err.Range)
    | Ok _ -> Alcotest.failf "%s: forged contact accepted" label
  in
  expect_range "negative a" (forged (-3) 2);
  expect_range "a out of range" (forged 7 9);
  expect_range "b out of range" (forged 1 9)

let trace_gen =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* m = int_range 0 25 in
    let* seed = int in
    return (Util.random_trace (Rng.create seed) ~n ~m ~horizon:20))

let trace_adjacency_complete =
  QCheck2.Test.make ~count:300 ~name:"node_contacts partitions contacts" trace_gen (fun trace ->
      let n = Trace.n_nodes trace in
      let total = ref 0 in
      let ok = ref true in
      for u = 0 to n - 1 do
        let cs = Trace.node_contacts trace u in
        total := !total + Array.length cs;
        Array.iter (fun c -> if not (Contact.involves c u) then ok := false) cs;
        (* sorted *)
        for i = 1 to Array.length cs - 1 do
          if Contact.compare_by_start cs.(i - 1) cs.(i) > 0 then ok := false
        done;
        if Trace.degree trace u <> Array.length cs then ok := false
      done;
      !ok && !total = 2 * Trace.n_contacts trace)

let trace_pair_contacts =
  QCheck2.Test.make ~count:300 ~name:"pair_contacts = filtered contacts" trace_gen
    (fun trace ->
      let n = Trace.n_nodes trace in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let got = Trace.pair_contacts trace u v in
          let expected =
            Trace.fold
              (fun acc (c : Contact.t) -> if c.a = u && c.b = v then c :: acc else acc)
              [] trace
            |> List.rev
          in
          if got <> expected then ok := false
        done
      done;
      !ok)

let trace_contact_rate () =
  let trace =
    Util.trace_of_contacts ~n_nodes:4 ~t_start:0. ~t_end:100.
      [ (0, 1, 0., 10.); (2, 3, 50., 60.) ]
  in
  (* 2 contacts * 2 endpoints / (4 nodes * 100 s) *)
  Alcotest.(check (float 1e-12)) "rate" 0.01 (Trace.contact_rate trace);
  Alcotest.(check int) "active" 4 (Trace.active_nodes trace)

let trace_io_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"Trace_io round-trip" trace_gen (fun trace ->
      let reloaded = Trace_io.of_string (Trace_io.to_string trace) in
      Trace.n_nodes reloaded = Trace.n_nodes trace
      && Trace.t_start reloaded = Trace.t_start trace
      && Trace.t_end reloaded = Trace.t_end trace
      && Trace.name reloaded = Trace.name trace
      && Array.for_all2 Contact.equal (Trace.contacts reloaded) (Trace.contacts trace))

let trace_io_file () =
  let trace = Util.trace_of_contacts [ (0, 1, 0., 5.); (1, 2, 3., 8.) ] in
  let path = Filename.temp_file "omn" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save trace path;
      let reloaded = Trace_io.load path in
      Alcotest.(check int) "contacts" 2 (Trace.n_contacts reloaded))

let trace_io_headerless () =
  let trace = Trace_io.of_string "0 1 2.5 3.5\n2 1 0 1\n" in
  Alcotest.(check int) "nodes inferred" 3 (Trace.n_nodes trace);
  Alcotest.(check (float 0.)) "window inferred lo" 0. (Trace.t_start trace);
  Alcotest.(check (float 0.)) "window inferred hi" 3.5 (Trace.t_end trace)

let same_trace a b =
  Trace.n_nodes a = Trace.n_nodes b
  && Trace.t_start a = Trace.t_start b
  && Trace.t_end a = Trace.t_end b
  && Trace.name a = Trace.name b
  && Array.for_all2 Contact.equal (Trace.contacts a) (Trace.contacts b)

let trace_io_roundtrip_edges () =
  let check_rt name trace =
    Alcotest.(check bool) name true (same_trace trace (Trace_io.of_string (Trace_io.to_string trace)))
  in
  check_rt "empty trace" (Trace.create ~n_nodes:0 ~t_start:0. ~t_end:0. []);
  check_rt "empty window, nodes only" (Trace.create ~n_nodes:5 ~t_start:3. ~t_end:3. []);
  check_rt "zero-duration contact"
    (Util.trace_of_contacts ~n_nodes:3 ~t_start:0. ~t_end:10. [ (0, 2, 5., 5.) ]);
  (* a declared window wider than any record must survive the round trip *)
  check_rt "window disagrees with records"
    (Util.trace_of_contacts ~n_nodes:4 ~t_start:0. ~t_end:100. [ (1, 2, 40., 60.) ]);
  check_rt "negative times"
    (Util.trace_of_contacts ~n_nodes:2 ~t_start:(-50.) ~t_end:(-10.) [ (0, 1, -40., -20.) ])

let trace_io_clean_repair =
  QCheck2.Test.make ~count:200 ~name:"repair on clean input only merges duplicates" trace_gen
    (fun trace ->
      match Trace_io.parse ~policy:Omn_robust.Repair.Repair (Trace_io.to_string trace) with
      | Error _ -> false
      | Ok (t, report) ->
        (* random traces may contain exact duplicate contacts, which
           Repair legitimately merges; nothing else may change *)
        List.for_all
          (fun (e : Omn_robust.Repair.event) -> e.action = Omn_robust.Repair.Merged_duplicate)
          report.Omn_robust.Repair.events
        && Trace.n_nodes t = Trace.n_nodes trace
        && Trace.t_start t = Trace.t_start trace
        && Trace.t_end t = Trace.t_end trace)

let trace_io_fixture_errors () =
  let module Err = Omn_robust.Err in
  let expect text code line =
    match Trace_io.parse text with
    | Error (e : Err.t) ->
      Alcotest.(check string)
        (Printf.sprintf "%S code" text)
        (Err.code_name code) (Err.code_name e.code);
      Alcotest.(check (option int)) (Printf.sprintf "%S line" text) (Some line) e.line
    | Ok _ -> Alcotest.failf "%S should be rejected" text
  in
  expect "0 1 3" Err.Parse 1;
  expect "0 1 0 1\n0 1 nope 3" Err.Parse 2;
  expect "# nodes x\n0 1 0 1" Err.Header 1;
  expect "# window 0 oops\n" Err.Header 1;
  expect "# window 5 1\n" Err.Header 1;
  expect "0 1 0 1\n0 0 2 3" Err.Contact 2;
  expect "0 1 nan 3" Err.Contact 1;
  expect "-1 1 0 3" Err.Contact 1;
  expect "0 1 2 1" Err.Contact 1;
  expect "# window 0 5\n0 1 0 2\n0 1 4 9" Err.Window 3;
  expect "# nodes 1\n0 1 0 1" Err.Range 2;
  expect "# nodes -3\n" Err.Header 1

let trace_io_errors () =
  (match Trace_io.of_string "0 1 nope 3" with
  | exception Failure msg ->
    Alcotest.(check bool) "line number in error" true
      (String.length msg > 0 && String.contains msg '1')
  | _ -> Alcotest.fail "malformed line accepted");
  match Trace_io.of_string "0 1 3" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "short line accepted"

(* --- Trace_stats --- *)

let stats_durations () =
  let trace =
    Util.trace_of_contacts [ (0, 1, 0., 10.); (0, 1, 20., 25.); (1, 2, 30., 50.) ]
  in
  Alcotest.(check (float 1e-9)) "frac <= 10" (2. /. 3.)
    (Trace_stats.fraction_duration_leq trace 10.);
  let s = Trace_stats.summary trace in
  Alcotest.(check (float 1e-9)) "median" 10. s.median_duration;
  Alcotest.(check (float 1e-9)) "mean" (35. /. 3.) s.mean_duration

let stats_inter_contact () =
  let trace =
    Util.trace_of_contacts [ (0, 1, 0., 10.); (0, 1, 30., 35.); (0, 1, 32., 40.); (1, 2, 5., 6.) ]
  in
  match Trace_stats.inter_contact_times trace with
  | None -> Alcotest.fail "expected gaps"
  | Some d ->
    (* gaps for pair (0,1): 30-10 = 20, and 0 (overlapping records). *)
    Alcotest.(check int) "two gaps" 2 (Omn_stats.Empirical.count d);
    Alcotest.(check (float 1e-9)) "max gap" 20. (Omn_stats.Empirical.quantile d 1.)

let stats_next_contact () =
  let trace =
    Util.trace_of_contacts ~t_end:30. [ (0, 1, 10., 12.); (0, 2, 20., 21.) ]
  in
  let steps = Trace_stats.next_contact_steps trace 0 in
  (* From 0: wait until 10; in contact 10-12; wait until 20; contact 20-21; nothing after. *)
  let del t =
    (* next arrival for departure t per the staircase: last step with fst <= t *)
    let rec go best = function
      | (d, a) :: rest when d <= t -> go (Some a) rest
      | _ -> best
    in
    match go None steps with Some a -> Float.max t a | None -> infinity
  in
  Alcotest.(check (float 1e-9)) "wait at 0" 10. (del 0.);
  Alcotest.(check (float 1e-9)) "inside first" 11. (del 11.);
  Alcotest.(check (float 1e-9)) "between" 20. (del 15.);
  Alcotest.(check bool) "after all" true (del 25. = infinity)

let stats_empty_trace () =
  let trace = Trace.create ~n_nodes:3 ~t_start:0. ~t_end:10. [] in
  let s = Trace_stats.summary trace in
  Alcotest.(check int) "no contacts" 0 s.n_contacts;
  Alcotest.(check int) "no active nodes" 0 s.active_nodes;
  Alcotest.(check int) "nodes still counted" 3 s.n_nodes;
  Alcotest.(check bool) "median is nan" true (Float.is_nan s.median_duration);
  Alcotest.(check bool) "mean is nan" true (Float.is_nan s.mean_duration);
  Alcotest.(check (float 0.)) "rate" 0. s.contact_rate_per_day;
  Alcotest.(check (float 0.)) "frac <= anything is 0" 0.
    (Trace_stats.fraction_duration_leq trace 1e9);
  Alcotest.(check bool) "no inter-contact gaps" true
    (Trace_stats.inter_contact_times trace = None);
  (match Trace_stats.duration_distribution trace with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duration_distribution on empty trace should reject");
  (* the staircase of a node with no contacts: wait forever from t_start *)
  (match Trace_stats.next_contact_steps trace 0 with
  | [ (t, inf) ] ->
    Alcotest.(check (float 0.)) "from t_start" 0. t;
    Alcotest.(check bool) "never" true (inf = infinity)
  | _ -> Alcotest.fail "expected a single infinite step");
  let profile = Trace_stats.contacts_per_window trace ~window:2.5 in
  Alcotest.(check int) "windows over empty trace" 4 (Array.length profile);
  Array.iter (fun (_, k) -> Alcotest.(check int) "all windows empty" 0 k) profile;
  (* degenerate window: zero span still yields one (empty) window *)
  let point = Trace.create ~n_nodes:2 ~t_start:5. ~t_end:5. [] in
  (match Trace_stats.contacts_per_window point ~window:1. with
  | [| (t, 0) |] -> Alcotest.(check (float 0.)) "window starts at t_start" 5. t
  | _ -> Alcotest.fail "zero-span trace should give one empty window");
  match Trace_stats.contacts_per_window trace ~window:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "window <= 0 should reject"

let stats_single_contact () =
  let trace = Util.trace_of_contacts ~n_nodes:4 ~t_start:0. ~t_end:20. [ (1, 2, 4., 10.) ] in
  let s = Trace_stats.summary trace in
  Alcotest.(check int) "one contact" 1 s.n_contacts;
  Alcotest.(check int) "two active nodes" 2 s.active_nodes;
  Alcotest.(check (float 1e-9)) "median = the duration" 6. s.median_duration;
  Alcotest.(check (float 1e-9)) "mean = the duration" 6. s.mean_duration;
  (* one contact per pair: no successive interval, hence no gap *)
  Alcotest.(check bool) "no gaps from a single contact" true
    (Trace_stats.inter_contact_times trace = None);
  Alcotest.(check (float 1e-9)) "frac below" 0. (Trace_stats.fraction_duration_leq trace 5.9);
  Alcotest.(check (float 1e-9)) "frac at" 1. (Trace_stats.fraction_duration_leq trace 6.);
  let ccdf = Trace_stats.duration_ccdf trace [| 0.; 6.; 7. |] in
  Alcotest.(check (float 1e-9)) "ccdf before" 1. ccdf.(0);
  (* ccdf is P(X > g): at the single duration it drops to 0 *)
  Alcotest.(check (float 1e-9)) "ccdf at" 0. ccdf.(1);
  Alcotest.(check (float 1e-9)) "ccdf after" 0. ccdf.(2)

let stats_activity_profile () =
  let trace = Util.trace_of_contacts ~t_end:100. [ (0, 1, 5., 6.); (0, 1, 15., 16.); (1, 2, 95., 96.) ] in
  let profile = Trace_stats.contacts_per_window trace ~window:10. in
  Alcotest.(check int) "windows" 10 (Array.length profile);
  Alcotest.(check int) "first window" 1 (snd profile.(0));
  Alcotest.(check int) "second window" 1 (snd profile.(1));
  Alcotest.(check int) "last window" 1 (snd profile.(9))

let suite =
  [
    Alcotest.test_case "contact canonicalisation" `Quick contact_canonical;
    Alcotest.test_case "contact validation" `Quick contact_rejects;
    Alcotest.test_case "point contacts allowed" `Quick contact_point_allowed;
    Alcotest.test_case "interval overlap" `Quick contact_overlaps;
    Alcotest.test_case "trace validation" `Quick trace_rejects;
    Alcotest.test_case "forged contacts get typed errors" `Quick trace_rejects_forged_contact;
    Alcotest.test_case "contact rate formula" `Quick trace_contact_rate;
    Alcotest.test_case "trace file io" `Quick trace_io_file;
    Alcotest.test_case "headerless files" `Quick trace_io_headerless;
    Alcotest.test_case "io error reporting" `Quick trace_io_errors;
    Alcotest.test_case "roundtrip edge cases" `Quick trace_io_roundtrip_edges;
    Alcotest.test_case "malformed fixture corpus" `Quick trace_io_fixture_errors;
    Alcotest.test_case "duration statistics" `Quick stats_durations;
    Alcotest.test_case "inter-contact gaps" `Quick stats_inter_contact;
    Alcotest.test_case "next-contact staircase" `Quick stats_next_contact;
    Alcotest.test_case "stats on the empty trace" `Quick stats_empty_trace;
    Alcotest.test_case "stats on a single contact" `Quick stats_single_contact;
    Alcotest.test_case "activity profile" `Quick stats_activity_profile;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ trace_adjacency_complete; trace_pair_contacts; trace_io_roundtrip; trace_io_clean_repair ]
