(* Observability layer: registry semantics, domain merging, spans, JSON
   round trips — and the contract that instrumentation never perturbs
   computed results (bit-identity of Delay_cdf with metrics on/off). *)

module Metrics = Omn_obs.Metrics
module Span = Omn_obs.Span
module Json = Omn_obs.Json
module Rng = Omn_stats.Rng

let fresh_enabled () =
  let reg = Metrics.create () in
  Metrics.set_enabled ~reg true;
  reg

(* -- registry basics ----------------------------------------------------- *)

let test_counter_basics () =
  let reg = fresh_enabled () in
  let c = Metrics.counter ~reg "jobs" in
  Metrics.incr c;
  Metrics.add c 4;
  let snap = Metrics.snapshot ~reg () in
  Alcotest.(check (option int)) "total" (Some 5) (Metrics.counter_total snap "jobs");
  Alcotest.(check (option int)) "absent" None (Metrics.counter_total snap "nope");
  (* find-or-create: a second registration shares the metric *)
  let c' = Metrics.counter ~reg "jobs" in
  Metrics.incr c';
  let snap = Metrics.snapshot ~reg () in
  Alcotest.(check (option int)) "shared handle" (Some 6) (Metrics.counter_total snap "jobs")

let test_kind_mismatch () =
  let reg = fresh_enabled () in
  let _ = Metrics.counter ~reg "x" in
  Alcotest.check_raises "counter-vs-gauge"
    (Invalid_argument "Metrics.gauge: x is registered as another type") (fun () ->
      ignore (Metrics.gauge ~reg "x"))

let test_disabled_noop () =
  let reg = Metrics.create () in
  (* registries start disabled *)
  Alcotest.(check bool) "starts disabled" false (Metrics.enabled ~reg ());
  let c = Metrics.counter ~reg "c" in
  let g = Metrics.gauge ~reg "g" in
  let h = Metrics.histogram ~reg "h" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.gadd g 3.0;
  Metrics.set g 7.0;
  Metrics.observe h 0.5;
  let v = Span.with_ ~reg ~name:"s" (fun () -> 42) in
  Alcotest.(check int) "span returns value" 42 v;
  let snap = Metrics.snapshot ~reg () in
  Alcotest.(check (option int)) "counter untouched" (Some 0) (Metrics.counter_total snap "c");
  Util.check_float "gauge untouched" 0. (Option.get (Metrics.gauge_total snap "g"));
  let hv = Option.get (Metrics.find_histogram snap "h") in
  Alcotest.(check int) "histogram untouched" 0 hv.Metrics.h_count;
  Alcotest.(check bool) "no spans" true (snap.Metrics.spans = [])

let test_reset () =
  let reg = fresh_enabled () in
  let c = Metrics.counter ~reg "c" in
  Metrics.add c 9;
  ignore (Span.with_ ~reg ~name:"s" (fun () -> ()));
  Metrics.reset ~reg ();
  let snap = Metrics.snapshot ~reg () in
  Alcotest.(check (option int)) "counter zeroed, still registered" (Some 0)
    (Metrics.counter_total snap "c");
  Alcotest.(check bool) "spans dropped" true (snap.Metrics.spans = [])

(* -- histograms ---------------------------------------------------------- *)

let test_histogram_buckets () =
  (* bucket bounds: geometric, ratio 2, from 1e-9; last is infinity *)
  Util.check_float "bucket 0" 1e-9 (Metrics.bucket_le 0);
  Util.check_float "bucket 1" 2e-9 (Metrics.bucket_le 1);
  Alcotest.(check bool) "last bucket infinite" true (Metrics.bucket_le 63 = infinity);
  for i = 0 to 62 do
    if not (Metrics.bucket_le i < Metrics.bucket_le (i + 1)) then
      Alcotest.failf "bucket bounds not increasing at %d" i
  done;
  let reg = fresh_enabled () in
  let h = Metrics.histogram ~reg "lat" in
  Metrics.observe h 0.;          (* <= 1e-9 -> bucket 0 *)
  Metrics.observe h (-1.0);      (* negatives also land in bucket 0 *)
  Metrics.observe h 1.5e-9;      (* (1e-9, 2e-9] -> bucket 1 *)
  Metrics.observe h 1e30;        (* beyond 1e-9 * 2^62 -> last bucket *)
  Metrics.observe h nan;         (* ignored *)
  let snap = Metrics.snapshot ~reg () in
  let hv = Option.get (Metrics.find_histogram snap "lat") in
  Alcotest.(check int) "count (nan dropped)" 4 hv.Metrics.h_count;
  Util.check_float "min" (-1.0) hv.Metrics.h_min;
  Util.check_float "max" 1e30 hv.Metrics.h_max;
  let bucket le =
    match List.assoc_opt le hv.Metrics.h_buckets with Some n -> n | None -> 0
  in
  Alcotest.(check int) "bucket 1e-9" 2 (bucket 1e-9);
  Alcotest.(check int) "bucket 2e-9" 1 (bucket 2e-9);
  Alcotest.(check int) "overflow bucket" 1 (bucket infinity);
  (* empty histogram: registered but never observed *)
  let _ = Metrics.histogram ~reg "empty" in
  let snap = Metrics.snapshot ~reg () in
  let ev = Option.get (Metrics.find_histogram snap "empty") in
  Alcotest.(check int) "empty count" 0 ev.Metrics.h_count;
  Alcotest.(check bool) "empty min" true (ev.Metrics.h_min = infinity);
  Alcotest.(check bool) "empty max" true (ev.Metrics.h_max = neg_infinity)

(* -- merging across raw domains ------------------------------------------ *)

let test_merge_across_domains () =
  let reg = fresh_enabled () in
  let c = Metrics.counter ~reg "tasks" in
  let g = Metrics.gauge ~reg "busy" in
  let h = Metrics.histogram ~reg "wait" in
  Metrics.add c 5;
  Metrics.gadd g 1.5;
  Metrics.observe h 0.25;
  let worker () =
    Metrics.add c 3;
    Metrics.gadd g 2.5;
    Metrics.observe h 0.5;
    ignore (Span.with_ ~reg ~name:"worker" (fun () -> 1))
  in
  let d1 = Domain.spawn worker in
  let d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  let snap = Metrics.snapshot ~reg () in
  Alcotest.(check (option int)) "counter merged" (Some 11) (Metrics.counter_total snap "tasks");
  (match List.assoc_opt "tasks" snap.Metrics.counters with
  | None -> Alcotest.fail "counter missing from snapshot"
  | Some (_, per_domain) ->
    Alcotest.(check int) "three shards contributed" 3 (List.length per_domain);
    let ids = List.map fst per_domain in
    Alcotest.(check bool) "per-domain ids sorted" true (List.sort compare ids = ids);
    Alcotest.(check int) "per-domain values sum to total" 11
      (List.fold_left (fun a (_, v) -> a + v) 0 per_domain));
  Util.check_float "gauge merged by sum" 6.5 (Option.get (Metrics.gauge_total snap "busy"));
  let hv = Option.get (Metrics.find_histogram snap "wait") in
  Alcotest.(check int) "histogram count merged" 3 hv.Metrics.h_count;
  Util.check_float "histogram sum merged" 1.25 hv.Metrics.h_sum;
  Util.check_float "histogram min" 0.25 hv.Metrics.h_min;
  Util.check_float "histogram max" 0.5 hv.Metrics.h_max;
  let sv = Option.get (Metrics.find_span snap "worker") in
  Alcotest.(check int) "spans from both domains aggregate" 2 sv.Metrics.sv_count

(* -- spans ---------------------------------------------------------------- *)

let test_span_nesting () =
  let reg = fresh_enabled () in
  let r =
    Span.with_ ~reg ~name:"outer" (fun () ->
        let a = Span.with_ ~reg ~name:"inner" (fun () -> 20) in
        let b = Span.with_ ~reg ~name:"inner" (fun () -> 22) in
        a + b)
  in
  Alcotest.(check int) "nested result" 42 r;
  let snap = Metrics.snapshot ~reg () in
  let paths = List.map (fun sv -> sv.Metrics.sv_path) snap.Metrics.spans in
  Alcotest.(check (list string)) "paths" [ "outer"; "outer/inner" ] paths;
  let outer = Option.get (Metrics.find_span snap "outer") in
  let inner = Option.get (Metrics.find_span snap "outer/inner") in
  Alcotest.(check int) "outer count" 1 outer.Metrics.sv_count;
  Alcotest.(check int) "inner count" 2 inner.Metrics.sv_count;
  Alcotest.(check bool) "outer wall >= inner wall" true
    (outer.Metrics.sv_wall >= inner.Metrics.sv_wall);
  Alcotest.(check bool) "wall non-negative" true (inner.Metrics.sv_wall >= 0.)

let test_span_exception () =
  let reg = fresh_enabled () in
  (match Span.with_ ~reg ~name:"boom" (fun () -> failwith "expected") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure m -> Alcotest.(check string) "exception propagates" "expected" m);
  let snap = Metrics.snapshot ~reg () in
  let sv = Option.get (Metrics.find_span snap "boom") in
  Alcotest.(check int) "span recorded despite raise" 1 sv.Metrics.sv_count;
  (* the stack was unwound: a subsequent span is a root, not boom/next *)
  ignore (Span.with_ ~reg ~name:"next" (fun () -> ()));
  let snap = Metrics.snapshot ~reg () in
  Alcotest.(check bool) "stack unwound after raise" true
    (Option.is_some (Metrics.find_span snap "next"))

(* -- JSON ----------------------------------------------------------------- *)

let test_json_parse () =
  (match Json.of_string "  {\"a\": [1, 2.5, true, null, \"x\\u0041\\n\"], \"b\": -3} " with
  | Ok
      (Json.Obj
         [
           ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Bool true; Json.Null; Json.String "xA\n" ]);
           ("b", Json.Int (-3));
         ]) ->
    ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Json.of_string "{} garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  (match Json.of_string "{\"unterminated\": " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input accepted");
  (* doubles survive a print/parse round trip exactly *)
  List.iter
    (fun v ->
      match Json.of_string (Json.to_string (Json.Float v)) with
      | Ok (Json.Float v') when v' = v -> ()
      | other ->
        Alcotest.failf "float %.17g did not round-trip: %s" v
          (match other with Ok j -> Json.to_string j | Error e -> e))
    [ 0.1; 1. /. 3.; 1e-300; 1.7976931348623157e308; -2.5 ];
  (* pretty and compact printing parse back to the same value *)
  let j = Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.String "s" ]); ("y", Json.Null) ] in
  Alcotest.(check bool) "pretty round trip" true (Json.of_string (Json.to_string ~pretty:true j) = Ok j);
  Alcotest.(check bool) "compact round trip" true (Json.of_string (Json.to_string j) = Ok j)

let test_json_nonfinite () =
  (* non-finite floats print as string sentinels, never as bare nan/inf
     (which no JSON parser accepts) *)
  Alcotest.(check string) "nan" "\"NaN\"" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf" "\"Infinity\"" (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "-inf" "\"-Infinity\""
    (Json.to_string (Json.Float Float.neg_infinity));
  (* and to_float maps the sentinels back *)
  (match Option.map Float.is_nan (Json.to_float (Json.String "NaN")) with
  | Some true -> ()
  | _ -> Alcotest.fail "NaN sentinel did not decode");
  Alcotest.(check (option (float 0.))) "Infinity decodes" (Some Float.infinity)
    (Json.to_float (Json.String "Infinity"));
  Alcotest.(check (option (float 0.))) "-Infinity decodes" (Some Float.neg_infinity)
    (Json.to_float (Json.String "-Infinity"));
  Alcotest.(check (option (float 0.))) "other strings do not" None
    (Json.to_float (Json.String "Inf"));
  (* the full print -> parse -> decode path, nested in a value *)
  let j = Json.Obj [ ("v", Json.Float Float.infinity); ("w", Json.Float 2.5) ] in
  match Json.of_string (Json.to_string ~pretty:true j) with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok j' ->
    Alcotest.(check (option (float 0.))) "survives round trip" (Some Float.infinity)
      (Option.bind (Json.member "v" j') Json.to_float);
    Alcotest.(check (option (float 0.))) "finite neighbour intact" (Some 2.5)
      (Option.bind (Json.member "w" j') Json.to_float)

(* Spans recorded inside pool tasks land on whichever domain ran the
   task: the submitter sees them under its current stack ("outer/task"),
   helper domains as roots ("task"). The split is nondeterministic, but
   the total across both paths is exact and the outer span stays
   single. *)
let test_span_across_pool () =
  let reg = fresh_enabled () in
  let n = 64 in
  Omn_parallel.Pool.with_pool ~domains:3 (fun pool ->
      let out =
        Span.with_ ~reg ~name:"outer" (fun () ->
            Omn_parallel.Pool.map pool
              (fun i -> Span.with_ ~reg ~name:"task" (fun () -> i * 2))
              (Array.init n Fun.id))
      in
      Alcotest.(check bool) "results correct" true
        (out = Array.init n (fun i -> i * 2)));
  let snap = Metrics.snapshot ~reg () in
  let count path =
    match Metrics.find_span snap path with Some sv -> sv.Metrics.sv_count | None -> 0
  in
  Alcotest.(check int) "outer ran once" 1 (count "outer");
  Alcotest.(check int) "every task span recorded exactly once" n
    (count "task" + count "outer/task");
  Alcotest.(check int) "no other task paths" 0
    (List.length
       (List.filter
          (fun sv ->
            (match sv.Metrics.sv_path with
            | "task" | "outer/task" | "outer" -> false
            | _ -> true)
            && sv.Metrics.sv_count > 0)
          snap.Metrics.spans))

let test_snapshot_roundtrip () =
  let reg = fresh_enabled () in
  let c = Metrics.counter ~reg "a.count" in
  let g = Metrics.gauge ~reg "a.gauge" in
  let h = Metrics.histogram ~reg "a.histo" in
  let _ = Metrics.histogram ~reg "a.empty" in
  Metrics.add c 17;
  Metrics.gadd g 2.25;
  Metrics.observe h 1e-3;
  Metrics.observe h 0.125;
  ignore (Span.with_ ~reg ~name:"top" (fun () -> Span.with_ ~reg ~name:"sub" (fun () -> ())));
  let snap = Metrics.snapshot ~reg () in
  let json = Metrics.snapshot_to_json snap in
  (* schema marker present *)
  (match Json.member "schema" json with
  | Some (Json.String "omn-metrics 1") -> ()
  | _ -> Alcotest.fail "schema field missing or wrong");
  (* through a string: what --metrics writes is what we can read back *)
  let s = Json.to_string ~pretty:true json in
  match Json.of_string s with
  | Error e -> Alcotest.failf "snapshot JSON does not reparse: %s" e
  | Ok j2 -> (
    match Metrics.snapshot_of_json j2 with
    | Error e -> Alcotest.failf "snapshot_of_json: %s" e
    | Ok snap2 ->
      Alcotest.(check bool) "snapshot round-trips through JSON" true (snap = snap2))

(* -- cross-process merge --------------------------------------------------- *)

let test_merge_basic () =
  let reg_a = fresh_enabled () in
  let reg_b = fresh_enabled () in
  Metrics.add (Metrics.counter ~reg:reg_a "jobs") 5;
  Metrics.add (Metrics.counter ~reg:reg_a "only_a") 2;
  Metrics.gadd (Metrics.gauge ~reg:reg_a "busy") 1.5;
  Metrics.observe (Metrics.histogram ~reg:reg_a "lat") 0.25;
  Metrics.observe (Metrics.histogram ~reg:reg_a "lat") 4.0;
  Metrics.span_record reg_a ~path:"work" ~wall:1.0 ~cpu:0.5;
  Metrics.add (Metrics.counter ~reg:reg_b "jobs") 3;
  Metrics.add (Metrics.counter ~reg:reg_b "only_b") 7;
  Metrics.gadd (Metrics.gauge ~reg:reg_b "busy") 2.5;
  Metrics.observe (Metrics.histogram ~reg:reg_b "lat") 0.25;
  Metrics.span_record reg_b ~path:"work" ~wall:2.0 ~cpu:1.0;
  let a = Metrics.snapshot ~reg:reg_a () in
  let b = Metrics.snapshot ~reg:reg_b () in
  let m = Metrics.merge a b in
  Alcotest.(check (option int)) "shared counter sums" (Some 8) (Metrics.counter_total m "jobs");
  Alcotest.(check (option int)) "a-only kept" (Some 2) (Metrics.counter_total m "only_a");
  Alcotest.(check (option int)) "b-only kept" (Some 7) (Metrics.counter_total m "only_b");
  Util.check_float "gauge sums" 4.0 (Option.get (Metrics.gauge_total m "busy"));
  let hv = Option.get (Metrics.find_histogram m "lat") in
  Alcotest.(check int) "histogram count" 3 hv.Metrics.h_count;
  Util.check_float "histogram sum" 4.5 hv.Metrics.h_sum;
  Util.check_float "histogram min" 0.25 hv.Metrics.h_min;
  Util.check_float "histogram max" 4.0 hv.Metrics.h_max;
  (let bucket le =
     match List.assoc_opt le hv.Metrics.h_buckets with Some n -> n | None -> 0
   in
   let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hv.Metrics.h_buckets in
   Alcotest.(check int) "bucket counts sum to h_count" 3 total;
   let le_of v =
     let rec go i = if Metrics.bucket_le i >= v then Metrics.bucket_le i else go (i + 1) in
     go 0
   in
   Alcotest.(check int) "0.25 bucket holds both observations" 2 (bucket (le_of 0.25)));
  let sv = Option.get (Metrics.find_span m "work") in
  Alcotest.(check int) "span counts add" 2 sv.Metrics.sv_count;
  Util.check_float "span wall adds" 3.0 sv.Metrics.sv_wall;
  (* identity element *)
  Alcotest.(check bool) "empty is a left identity" true
    (Metrics.merge Metrics.empty_snapshot a = a);
  Alcotest.(check bool) "empty is a right identity" true
    (Metrics.merge a Metrics.empty_snapshot = a)

let test_tag_worker () =
  let reg = fresh_enabled () in
  let c = Metrics.counter ~reg "tasks" in
  Metrics.add c 4;
  let d = Domain.spawn (fun () -> Metrics.add c 6) in
  Domain.join d;
  let z = Metrics.counter ~reg "zero" in
  ignore z;
  Metrics.gadd (Metrics.gauge ~reg "busy") 2.5;
  let snap = Metrics.snapshot ~reg () in
  (match List.assoc_opt "tasks" snap.Metrics.counters with
  | Some (_, cells) -> Alcotest.(check int) "two domain cells before tagging" 2 (List.length cells)
  | None -> Alcotest.fail "counter missing");
  let tagged = Metrics.tag_worker ~worker:3 snap in
  (match List.assoc_opt "tasks" tagged.Metrics.counters with
  | Some (total, cells) ->
    Alcotest.(check int) "total preserved" 10 total;
    Alcotest.(check (list (pair int int))) "one cell keyed by worker" [ (3, 10) ] cells
  | None -> Alcotest.fail "counter missing after tagging");
  (match List.assoc_opt "zero" tagged.Metrics.counters with
  | Some (0, []) -> ()
  | Some _ -> Alcotest.fail "zero-total counter should keep empty cells"
  | None -> Alcotest.fail "zero counter missing");
  (match List.assoc_opt "busy" tagged.Metrics.gauges with
  | Some (total, [ (3, v) ]) ->
    Util.check_float "gauge total preserved" 2.5 total;
    Util.check_float "gauge cell is the total" 2.5 v
  | _ -> Alcotest.fail "gauge not collapsed to one worker cell");
  (* tagging two workers and merging keeps both breakdowns *)
  let m = Metrics.merge (Metrics.tag_worker ~worker:0 snap) (Metrics.tag_worker ~worker:1 snap) in
  match List.assoc_opt "tasks" m.Metrics.counters with
  | Some (20, [ (0, 10); (1, 10) ]) -> ()
  | Some (t, cells) ->
    Alcotest.failf "merged tagged counter: total %d, %d cells" t (List.length cells)
  | None -> Alcotest.fail "merged tagged counter missing"

let test_with_counter () =
  let reg = fresh_enabled () in
  Metrics.add (Metrics.counter ~reg "b") 1;
  let snap = Metrics.snapshot ~reg () in
  (* replace an existing counter: total recomputed from the cells *)
  let s1 = Metrics.with_counter "b" [ (1, 4); (0, 2) ] snap in
  (match List.assoc_opt "b" s1.Metrics.counters with
  | Some (6, [ (0, 2); (1, 4) ]) -> ()
  | _ -> Alcotest.fail "replacement cells not sorted or total wrong");
  (* insert a new one: the assoc list stays name-sorted *)
  let s2 = Metrics.with_counter "a" [ (0, 3) ] s1 in
  let names = List.map fst s2.Metrics.counters in
  Alcotest.(check (list string)) "sorted after insert" (List.sort compare names) names;
  Alcotest.(check (option int)) "inserted total" (Some 3) (Metrics.counter_total s2 "a");
  (* round-trips through JSON like any recorded counter *)
  match Metrics.snapshot_of_json (Metrics.snapshot_to_json s2) with
  | Ok s2' -> Alcotest.(check bool) "stamped snapshot round-trips" true (s2 = s2')
  | Error e -> Alcotest.failf "stamped snapshot JSON: %s" e

let test_prometheus () =
  let reg = fresh_enabled () in
  Metrics.add (Metrics.counter ~reg "shard.jobs") 5;
  Metrics.gadd (Metrics.gauge ~reg "pool.busy") 2.5;
  let h = Metrics.histogram ~reg "lat" in
  Metrics.observe h 0.25;
  Metrics.observe h 4.0;
  let snap = Metrics.tag_worker ~worker:0 (Metrics.snapshot ~reg ()) in
  let text = Metrics.to_prometheus snap in
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  List.iter
    (fun line -> if not (has line) then Alcotest.failf "exposition missing %S in:\n%s" line text)
    [
      "# TYPE omn_shard_jobs counter";
      "omn_shard_jobs 5";
      "omn_shard_jobs{worker=\"0\"} 5";
      "# TYPE omn_pool_busy gauge";
      "omn_pool_busy{worker=\"0\"} 2.5";
      "# TYPE omn_lat histogram";
      "omn_lat_bucket{le=\"+Inf\"} 2";
      "omn_lat_sum 4.25";
      "omn_lat_count 2";
    ];
  (* every counter total in the snapshot appears as a total line *)
  List.iter
    (fun (name, (total, _)) ->
      let mapped =
        "omn_"
        ^ String.map
            (fun ch ->
              match ch with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> ch | _ -> '_')
            name
      in
      if not (has (Printf.sprintf "%s %d" mapped total)) then
        Alcotest.failf "no total line for %s" name)
    snap.Metrics.counters;
  (* cumulative buckets: counts are non-decreasing in le *)
  Alcotest.(check bool) "ends with newline" true (String.length text > 0 && text.[String.length text - 1] = '\n')

(* QCheck: merge is associative, commutative and order-insensitive.
   Snapshots are built from generated observation scripts with
   integer-valued floats, so float addition is exact and the algebraic
   laws hold structurally, not just approximately. *)

type mop = MC of int * int | MG of int * int | MH of int * int | MS of int * int

let snap_of_script ops =
  let reg = fresh_enabled () in
  List.iter
    (fun op ->
      match op with
      | MC (i, n) -> Metrics.add (Metrics.counter ~reg (Printf.sprintf "c%d" i)) n
      | MG (i, n) -> Metrics.gadd (Metrics.gauge ~reg (Printf.sprintf "g%d" i)) (float_of_int n)
      | MH (i, n) ->
        Metrics.observe (Metrics.histogram ~reg (Printf.sprintf "h%d" i)) (float_of_int n)
      | MS (i, n) ->
        Metrics.span_record reg
          ~path:(Printf.sprintf "s%d" i)
          ~wall:(float_of_int n) ~cpu:(float_of_int n))
    ops;
  Metrics.snapshot ~reg ()

let mop_gen =
  QCheck2.Gen.(
    let idx = int_range 0 3 and v = int_range 0 1000 in
    oneof
      [
        map2 (fun i n -> MC (i, n)) idx v;
        map2 (fun i n -> MG (i, n)) idx v;
        map2 (fun i n -> MH (i, n)) idx v;
        map2 (fun i n -> MS (i, n)) idx v;
      ])

let script_gen = QCheck2.Gen.(list_size (int_range 0 30) mop_gen)

let prop_merge_assoc_comm =
  QCheck2.Test.make ~count:150 ~name:"metrics merge is associative and commutative"
    QCheck2.Gen.(triple script_gen script_gen script_gen)
    (fun (sa, sb, sc) ->
      let a = snap_of_script sa and b = snap_of_script sb and c = snap_of_script sc in
      if Metrics.merge (Metrics.merge a b) c <> Metrics.merge a (Metrics.merge b c) then
        QCheck2.Test.fail_report "merge not associative";
      if Metrics.merge a b <> Metrics.merge b a then
        QCheck2.Test.fail_report "merge not commutative";
      if Metrics.merge a Metrics.empty_snapshot <> a then
        QCheck2.Test.fail_report "empty_snapshot not a right identity";
      true)

let prop_merge_order_insensitive =
  QCheck2.Test.make ~count:100 ~name:"merge_all is order-insensitive; totals add up"
    QCheck2.Gen.(pair (list_size (int_range 0 5) script_gen) int)
    (fun (scripts, seed) ->
      let snaps = List.mapi (fun w s -> Metrics.tag_worker ~worker:w (snap_of_script s)) scripts in
      let merged = Metrics.merge_all snaps in
      let rng = Rng.create seed in
      let shuffled =
        List.map snd
          (List.sort compare (List.map (fun s -> (Rng.int rng 1_000_000, s)) snaps))
      in
      if Metrics.merge_all shuffled <> merged then
        QCheck2.Test.fail_report "merge_all depends on worker order";
      (* each counter's merged total is the sum over the inputs *)
      List.iter
        (fun (name, (total, _)) ->
          let expect =
            List.fold_left
              (fun acc s -> acc + Option.value ~default:0 (Metrics.counter_total s name))
              0 snaps
          in
          if total <> expect then
            QCheck2.Test.fail_reportf "counter %s: merged %d <> summed %d" name total expect)
        merged.Metrics.counters;
      true)

let prop_prometheus_totals =
  QCheck2.Test.make ~count:80 ~name:"prometheus exposition totals match the snapshot"
    script_gen
    (fun script ->
      let snap = Metrics.tag_worker ~worker:1 (snap_of_script script) in
      let text = Metrics.to_prometheus snap in
      let lines = String.split_on_char '\n' text in
      List.iter
        (fun (name, (total, _)) ->
          let want = Printf.sprintf "omn_%s %d" name total in
          if not (List.mem want lines) then
            QCheck2.Test.fail_reportf "missing %S" want)
        snap.Metrics.counters;
      true)

(* -- bit-identity: metrics must not perturb results ----------------------- *)

let test_bit_identity () =
  let trace = Util.random_trace (Rng.create 0xB17) ~n:8 ~m:60 ~horizon:50 in
  let was = Metrics.enabled () in
  let compute () = Omn_core.Delay_cdf.compute ~max_hops:4 ~domains:2 trace in
  Metrics.set_enabled false;
  let off = compute () in
  Metrics.set_enabled true;
  let on_ = compute () in
  Metrics.set_enabled was;
  Alcotest.(check bool) "delay-cdf curves identical with metrics on/off" true (off = on_)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch;
    Alcotest.test_case "disabled registry is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "merge across domains" `Quick test_merge_across_domains;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
    Alcotest.test_case "json parse/print" `Quick test_json_parse;
    Alcotest.test_case "json non-finite sentinels" `Quick test_json_nonfinite;
    Alcotest.test_case "spans aggregate across pool workers" `Quick test_span_across_pool;
    Alcotest.test_case "snapshot JSON round trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "cross-process merge" `Quick test_merge_basic;
    Alcotest.test_case "tag_worker collapses cells" `Quick test_tag_worker;
    Alcotest.test_case "with_counter stamps cells" `Quick test_with_counter;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus;
    Alcotest.test_case "bit-identity under instrumentation" `Quick test_bit_identity;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_merge_assoc_comm; prop_merge_order_insensitive; prop_prometheus_totals ]
