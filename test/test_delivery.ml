open Omn_core
module Rng = Omn_stats.Rng

(* Random bi-sorted Pareto frontier snapshot. *)
let frontier_gen =
  QCheck2.Gen.(
    let* points =
      list_size (int_range 0 15)
        (map2 (fun ld ea -> Ld_ea.make ~ld:(float_of_int ld) ~ea:(float_of_int ea))
           (int_range 0 40) (int_range 0 40))
    in
    let f = Frontier.create () in
    List.iter (fun p -> ignore (Frontier.insert f p)) points;
    return (Frontier.to_array f))

let delivery_matches_definition =
  QCheck2.Test.make ~count:500 ~name:"del t = min over descriptors of delivery"
    QCheck2.Gen.(pair frontier_gen (float_range (-5.) 45.))
    (fun (snapshot, t) ->
      let d = Delivery.of_descriptors snapshot in
      let expected =
        Array.fold_left (fun acc p -> Float.min acc (Ld_ea.delivery p t)) infinity snapshot
      in
      Delivery.del d t = expected)

let delay_nonnegative =
  QCheck2.Test.make ~count:500 ~name:"delay >= 0"
    QCheck2.Gen.(pair frontier_gen (float_range (-5.) 45.))
    (fun (snapshot, t) ->
      let d = Delivery.of_descriptors snapshot in
      Delivery.delay d t >= 0.)

let del_monotone =
  QCheck2.Test.make ~count:500 ~name:"del is non-decreasing in creation time"
    QCheck2.Gen.(triple frontier_gen (float_range (-5.) 45.) (float_range 0. 10.))
    (fun (snapshot, t, dt) ->
      let d = Delivery.of_descriptors snapshot in
      Delivery.del d t <= Delivery.del d (t +. dt))

(* Exact Lebesgue success measure vs Riemann sampling. *)
let success_measure_vs_sampling =
  QCheck2.Test.make ~count:300 ~name:"success_measure = sampled measure"
    QCheck2.Gen.(triple frontier_gen (float_range 0. 30.) (float_range 0. 20.))
    (fun (snapshot, t_start_raw, budget) ->
      let d = Delivery.of_descriptors snapshot in
      let t_start = Float.min t_start_raw 20. in
      let t_end = t_start +. 15. in
      let exact = Delivery.success_measure d ~t_start ~t_end ~budget in
      let samples = 30_000 in
      let step = (t_end -. t_start) /. float_of_int samples in
      let hits = ref 0 in
      for i = 0 to samples - 1 do
        let t = t_start +. ((float_of_int i +. 0.5) *. step) in
        if Delivery.delay d t <= budget then incr hits
      done;
      let sampled = float_of_int !hits *. step in
      Float.abs (exact -. sampled) <= 4. *. step +. 1e-9)

let success_measure_monotone_budget =
  QCheck2.Test.make ~count:300 ~name:"success_measure non-decreasing in budget"
    QCheck2.Gen.(triple frontier_gen (float_range 0. 20.) (float_range 0. 10.))
    (fun (snapshot, b1, extra) ->
      let d = Delivery.of_descriptors snapshot in
      Delivery.success_measure d ~t_start:0. ~t_end:40. ~budget:b1
      <= Delivery.success_measure d ~t_start:0. ~t_end:40. ~budget:(b1 +. extra) +. 1e-9)

let success_measure_infinity () =
  let d =
    Delivery.of_descriptors [| Ld_ea.make ~ld:10. ~ea:5.; Ld_ea.make ~ld:20. ~ea:30. |]
  in
  (* With unlimited budget: all creation times up to the last LD succeed. *)
  Util.check_float "measure" 20. (Delivery.success_measure d ~t_start:0. ~t_end:40. ~budget:infinity)

let breakpoints_sorted =
  QCheck2.Test.make ~count:300 ~name:"breakpoints ascending and finite" frontier_gen
    (fun snapshot ->
      let bps = Delivery.breakpoints (Delivery.of_descriptors snapshot) in
      List.for_all Float.is_finite bps
      &&
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | _ -> true
      in
      sorted bps)

let rejects_unsorted () =
  match Delivery.of_descriptors [| Ld_ea.make ~ld:5. ~ea:5.; Ld_ea.make ~ld:4. ~ea:6. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-frontier accepted"

let suite =
  [
    Alcotest.test_case "unbounded-budget measure" `Quick success_measure_infinity;
    Alcotest.test_case "rejects non-frontier input" `Quick rejects_unsorted;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        delivery_matches_definition; delay_nonnegative; del_monotone;
        success_measure_vs_sampling; success_measure_monotone_budget; breakpoints_sorted;
      ]
