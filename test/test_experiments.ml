(* Smoke tests: every registered experiment runs in quick mode without
   raising, and produces some output. *)

let null_buffer = Buffer.create 4096

let null_fmt = Format.formatter_of_buffer null_buffer

let run_experiment (e : Omn_experiments.Registry.experiment) () =
  Buffer.clear null_buffer;
  e.run ~quick:true null_fmt;
  Format.pp_print_flush null_fmt ();
  Alcotest.(check bool)
    (Printf.sprintf "%s produced output" e.name)
    true
    (Buffer.length null_buffer > 40)

let registry_ids () =
  let names = List.map (fun (e : Omn_experiments.Registry.experiment) -> e.name) Omn_experiments.Registry.all in
  Alcotest.(check int) "21 experiments" 21 (List.length names);
  Alcotest.(check int) "unique ids" 21 (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "find works" true (Omn_experiments.Registry.find "fig9" <> None);
  Alcotest.(check bool) "find rejects" true (Omn_experiments.Registry.find "nope" = None)

let suite =
  Alcotest.test_case "registry ids" `Quick registry_ids
  :: List.map
       (fun (e : Omn_experiments.Registry.experiment) ->
         Alcotest.test_case (e.name ^ " (quick)") `Slow (run_experiment e))
       Omn_experiments.Registry.all
