(* Chaos harness for the resilience layer: supervised retries and
   quarantine (Supervise), retrying I/O (Retry_io), CRC-framed rotated
   checkpoints (Checkpoint), the checkpoint faults of Faultgen, and the
   end-to-end guarantees on the delay-CDF pipeline — a degraded run
   completes, reports its quarantined sources exactly, and every
   surviving result is bit-identical to a fault-free run. *)

module S = Omn_resilience.Supervise
module RI = Omn_robust.Retry_io
module Checkpoint = Omn_robust.Checkpoint
module Faultgen = Omn_robust.Faultgen
module Atomic_file = Omn_robust.Atomic_file
module Err = Omn_robust.Err
module Metrics = Omn_obs.Metrics
module Pool = Omn_parallel.Pool
module Trace = Omn_temporal.Trace
module Delay_cdf = Omn_core.Delay_cdf
module Diameter = Omn_core.Diameter
module Rng = Omn_stats.Rng

let get_ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %s" (Err.to_string e)

let no_sleep (_ : float) = ()

(* Backoffs of microseconds keep the retry paths fast under test. *)
let fast = { S.default with S.backoff = 1e-6; backoff_max = 1e-5 }

let with_ckpt f =
  let path = Filename.temp_file "omn_chaos" ".ckpt" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> Checkpoint.remove path) (fun () -> f path)

let flip_file ?(seed = 1) path =
  let data = Atomic_file.read_to_string path in
  Atomic_file.write_string path (Faultgen.apply ~seed Faultgen.Ckpt_flip data)

(* --- Supervise --- *)

let backoff_deterministic () =
  let p = { S.default with S.backoff = 0.1; backoff_max = 0.3; jitter_seed = 7 } in
  for attempt = 0 to 4 do
    for item = 0 to 3 do
      let d = S.backoff_delay p ~item ~attempt in
      Alcotest.(check (float 0.)) "deterministic" d (S.backoff_delay p ~item ~attempt);
      let base = Float.min p.S.backoff_max (p.S.backoff *. (2. ** float_of_int attempt)) in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d within [base/2, base)" attempt)
        true
        (d >= 0.5 *. base && d < base)
    done
  done;
  let ds = List.init 8 (fun item -> S.backoff_delay p ~item ~attempt:0) in
  Alcotest.(check bool) "jitter varies across items" true
    (List.exists (fun d -> d <> List.hd ds) ds)

let run_task_retries_then_succeeds () =
  let calls = ref 0 and slept = ref 0 in
  let f () =
    incr calls;
    if !calls <= 2 then failwith "flaky" else 42
  in
  match S.run_task ~sleep:(fun _ -> incr slept) { fast with S.retries = 3 } ~item:0 f with
  | Ok v ->
    Alcotest.(check int) "value" 42 v;
    Alcotest.(check int) "attempts made" 3 !calls;
    Alcotest.(check int) "backoffs slept" 2 !slept
  | Error fl -> Alcotest.failf "unexpected quarantine: %a" S.pp_failure fl

let run_task_quarantines () =
  let f () = failwith "poison" in
  (match S.run_task ~sleep:no_sleep { fast with S.retries = 2 } ~item:9 f with
  | Ok _ -> Alcotest.fail "poisoned task succeeded"
  | Error fl ->
    Alcotest.(check int) "item recorded" 9 fl.S.item;
    Alcotest.(check int) "attempts = retries + 1" 3 fl.S.attempts;
    Alcotest.(check bool) "reason kept" true (Util.contains_substring fl.S.reason "poison");
    let s = Format.asprintf "%a" S.pp_failure fl in
    Alcotest.(check bool) "pp mentions the item" true (Util.contains_substring s "item 9"));
  (* quarantine = false re-raises the final exception *)
  match
    S.run_task ~sleep:no_sleep { fast with S.retries = 1; quarantine = false } ~item:0 f
  with
  | exception Failure _ -> ()
  | Ok _ | Error _ -> Alcotest.fail "quarantine=false must re-raise"

let run_task_deadlines () =
  (* per-task deadline: a failing attempt that overran it is not retried *)
  let now = ref 0. in
  let clock () = !now in
  let calls = ref 0 in
  let f () =
    incr calls;
    now := !now +. 10.;
    failwith "slow"
  in
  (match
     S.run_task ~clock ~sleep:no_sleep
       { fast with S.retries = 5; task_deadline = Some 1. }
       ~item:0 f
   with
  | Error fl -> Alcotest.(check int) "overrun not retried" 1 fl.S.attempts
  | Ok _ -> Alcotest.fail "must fail");
  Alcotest.(check int) "one call" 1 !calls;
  (* give_up forfeits the remaining retries *)
  let calls = ref 0 in
  let f () =
    incr calls;
    failwith "x"
  in
  (match
     S.run_task ~sleep:no_sleep ~give_up:(fun () -> true) { fast with S.retries = 5 } ~item:0 f
   with
  | Error fl -> Alcotest.(check int) "gave up after first failure" 1 fl.S.attempts
  | Ok _ -> Alcotest.fail "must fail");
  (* malformed policies are rejected up front *)
  match S.run_task ~sleep:no_sleep { fast with S.retries = -1 } ~item:0 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative retries accepted"

let map_run_deadline () =
  let now = ref 0. in
  let clock () = !now in
  let f _ =
    now := !now +. 100.;
    failwith "always"
  in
  let results =
    S.map ~clock ~sleep:no_sleep
      { fast with S.retries = 5; run_deadline = Some 50. }
      f (Array.init 4 Fun.id)
  in
  Alcotest.(check int) "all slots failed" 4 (List.length (S.failures results));
  List.iter
    (fun (fl : S.failure) ->
      Alcotest.(check bool) "retries forfeited once the run deadline passed" true
        (fl.S.attempts <= 2))
    (S.failures results)

let supervised_map_bit_identity () =
  let xs = Array.init 60 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      let rs = S.map ~domains ~sleep:no_sleep S.default f xs in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d at %d domains" i domains) (f i) v
          | Error fl -> Alcotest.failf "spurious failure: %a" S.pp_failure fl)
        rs)
    [ 1; 2; 4 ]

let task_fault_hook_targets_items () =
  Fun.protect ~finally:(fun () -> S.set_task_fault None) @@ fun () ->
  let xs = [| 100; 101; 102; 103; 104 |] in
  (* a transient fault (first attempt only) is retried away *)
  S.set_task_fault
    (Some (fun ~item ~attempt -> if item = 103 && attempt = 0 then failwith "transient"));
  let rs = S.map ~sleep:no_sleep ~id:(fun x -> x) { fast with S.retries = 1 } Fun.id xs in
  Alcotest.(check (list int)) "no quarantine for transient faults" []
    (List.map (fun (f : S.failure) -> f.S.item) (S.failures rs));
  (* a persistent fault quarantines exactly its item *)
  S.set_task_fault (Some (fun ~item ~attempt:_ -> if item = 101 then failwith "dead"));
  let rs = S.map ~sleep:no_sleep ~id:(fun x -> x) { fast with S.retries = 1 } Fun.id xs in
  Alcotest.(check (list int)) "exact quarantine" [ 101 ]
    (List.map (fun (f : S.failure) -> f.S.item) (S.failures rs));
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "surviving slots intact" xs.(i) v
      | Error fl -> Alcotest.(check int) "only 101 failed" 101 fl.S.item)
    rs

(* --- Retry_io --- *)

let transient_classification () =
  Alcotest.(check bool) "EINTR" true (RI.transient (Unix.Unix_error (Unix.EINTR, "read", "")));
  Alcotest.(check bool) "EAGAIN" true (RI.transient (Unix.Unix_error (Unix.EAGAIN, "read", "")));
  Alcotest.(check bool) "Sys_error EINTR text" true
    (RI.transient (Sys_error "f: Interrupted system call"));
  Alcotest.(check bool) "Injected" true (RI.transient (RI.Injected "x"));
  Alcotest.(check bool) "ENOENT is fatal" false
    (RI.transient (Unix.Unix_error (Unix.ENOENT, "open", "")));
  Alcotest.(check bool) "Failure is fatal" false (RI.transient (Failure "x"))

let retry_io_injected_faults () =
  Fun.protect ~finally:(fun () -> RI.set_inject None) @@ fun () ->
  let path = Filename.temp_file "omn_retry" ".txt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  RI.write_string path "payload";
  let fails = Atomic.make 2 in
  RI.set_inject
    (Some
       (fun ~op ~path:_ ->
         if op = "read" && Atomic.fetch_and_add fails (-1) > 0 then raise (RI.Injected "io")));
  Alcotest.(check string) "read recovers through retries" "payload"
    (RI.read_to_string ~attempts:3 path);
  (* attempts exhausted: the fault surfaces *)
  Atomic.set fails 100;
  (match RI.read_to_string ~attempts:2 path with
  | exception RI.Injected _ -> ()
  | _ -> Alcotest.fail "exhausted retries must surface the fault");
  RI.set_inject None;
  (* writes are retried too, and the retries leave a consistent file *)
  let fails = Atomic.make 1 in
  RI.set_inject
    (Some
       (fun ~op ~path:_ ->
         if op = "write" && Atomic.fetch_and_add fails (-1) > 0 then raise (RI.Injected "io")));
  RI.write_string ~attempts:2 path "second";
  Alcotest.(check string) "retried write landed" "second" (RI.read_to_string path);
  RI.set_inject None;
  (* non-transient exceptions are not retried *)
  let calls = ref 0 in
  match
    RI.with_retries ~attempts:5 ~sleep:no_sleep ~op:"op" ~path:"p" (fun () ->
        incr calls;
        failwith "fatal")
  with
  | exception Failure _ -> Alcotest.(check int) "fatal error tried once" 1 !calls
  | _ -> Alcotest.fail "must raise"

(* --- Checkpoint --- *)

let magic = "omn-test 1\n"

let checkpoint_roundtrip_and_corruption () =
  with_ckpt @@ fun path ->
  Checkpoint.save ~magic ~path "payload-1";
  (match Checkpoint.load ~magic ~validate:Result.ok path with
  | Ok (p, Checkpoint.Current) -> Alcotest.(check string) "roundtrip" "payload-1" p
  | _ -> Alcotest.fail "fresh checkpoint must load as Current");
  let good = Atomic_file.read_to_string path in
  List.iter
    (fun fault ->
      let bad = Faultgen.apply ~seed:1 fault good in
      Alcotest.(check bool) (Faultgen.name fault ^ " changes bytes") true (bad <> good);
      match Checkpoint.decode ~magic ~path bad with
      | Error (e : Err.t) ->
        Alcotest.(check bool) "typed Checkpoint error" true (e.Err.code = Err.Checkpoint)
      | Ok _ -> Alcotest.failf "%s not caught by the CRC" (Faultgen.name fault))
    [ Faultgen.Ckpt_flip; Faultgen.Ckpt_truncate 0.4 ];
  (* wrong magic (format version bump) is rejected before the CRC *)
  match Checkpoint.decode ~magic:"omn-test 2\n" ~path good with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "old-format magic accepted"

let checkpoint_stale_passes_crc () =
  (* ckpt-stale simulates a checkpoint from other parameters: the
     embedded fingerprint changes but the CRC is re-sealed, so only
     caller-level validation can catch it. *)
  with_ckpt @@ fun path ->
  let fp_payload = "fp 0123456789abcdef0123456789abcdef tail" in
  Checkpoint.save ~magic ~path fp_payload;
  let stale = Faultgen.apply ~seed:1 Faultgen.Ckpt_stale (Atomic_file.read_to_string path) in
  match Checkpoint.decode ~magic ~path stale with
  | Ok p ->
    Alcotest.(check bool) "payload differs" true (p <> fp_payload);
    Alcotest.(check int) "same length" (String.length fp_payload) (String.length p)
  | Error e -> Alcotest.failf "stale fault must keep the CRC valid: %s" (Err.to_string e)

let checkpoint_rotation_fallback () =
  with_ckpt @@ fun path ->
  Checkpoint.save ~magic ~path "gen-1";
  Alcotest.(check bool) "no prev after first save" false
    (Sys.file_exists (Checkpoint.prev_path path));
  Checkpoint.save ~magic ~path "gen-2";
  Alcotest.(check bool) "prev after second save" true
    (Sys.file_exists (Checkpoint.prev_path path));
  (* corrupt current -> load falls back to the previous generation *)
  flip_file path;
  (match Checkpoint.load ~magic ~validate:Result.ok path with
  | Ok (p, Checkpoint.Previous) -> Alcotest.(check string) "previous payload" "gen-1" p
  | Ok (_, Checkpoint.Current) -> Alcotest.fail "corrupt current accepted"
  | Error e -> Alcotest.failf "no fallback: %s" (Err.to_string e));
  (* saving over a corrupt current must not promote it over the good prev *)
  Checkpoint.save ~magic ~path "gen-3";
  (match Checkpoint.load ~magic ~validate:Result.ok (Checkpoint.prev_path path) with
  | Ok (p, Checkpoint.Current) -> Alcotest.(check string) "prev survived rotation" "gen-1" p
  | _ -> Alcotest.fail "corrupt current was promoted to prev");
  (* both generations corrupt -> the current generation's error wins *)
  flip_file ~seed:2 path;
  flip_file ~seed:3 (Checkpoint.prev_path path);
  (match Checkpoint.load ~magic ~validate:Result.ok path with
  | Error (e : Err.t) ->
    Alcotest.(check bool) "typed" true (e.Err.code = Err.Checkpoint);
    Alcotest.(check (option string)) "cites the current file" (Some path) e.Err.file
  | Ok _ -> Alcotest.fail "double corruption accepted");
  Checkpoint.remove path;
  Alcotest.(check bool) "remove clears both generations" false
    (Sys.file_exists path || Sys.file_exists (Checkpoint.prev_path path))

let checkpoint_validate_rejection_falls_back () =
  with_ckpt @@ fun path ->
  Checkpoint.save ~magic ~path "good";
  Checkpoint.save ~magic ~path "bad";
  let validate p = if p = "bad" then Error (Err.v Err.Checkpoint "stale") else Ok p in
  match Checkpoint.load ~magic ~validate path with
  | Ok (p, Checkpoint.Previous) -> Alcotest.(check string) "fell back" "good" p
  | _ -> Alcotest.fail "validate rejection must fall back to prev"

let faultgen_ckpt_faults () =
  let payload = "row 00112233445566778899aabbccddeeff data" in
  let data = magic ^ payload ^ Checkpoint.crc32_hex payload in
  List.iter
    (fun fault ->
      Alcotest.(check string)
        (Faultgen.name fault ^ " deterministic")
        (Faultgen.apply ~seed:7 fault data)
        (Faultgen.apply ~seed:7 fault data))
    [ Faultgen.Ckpt_truncate 0.3; Faultgen.Ckpt_flip; Faultgen.Ckpt_stale ];
  let truncated = Faultgen.apply ~seed:7 (Faultgen.Ckpt_truncate 0.3) data in
  Alcotest.(check bool) "truncate shortens" true (String.length truncated < String.length data);
  let flipped = Faultgen.apply ~seed:7 Faultgen.Ckpt_flip data in
  Alcotest.(check int) "flip keeps length" (String.length data) (String.length flipped);
  let diffs =
    List.length
      (List.filter Fun.id (List.init (String.length data) (fun i -> data.[i] <> flipped.[i])))
  in
  Alcotest.(check int) "flip changes exactly one byte" 1 diffs;
  Alcotest.(check bool) "flip spares the magic line" true
    (String.sub flipped 0 (String.length magic) = magic);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered with the CLI enum") true
        (List.mem n Faultgen.all_names))
    [ "ckpt-truncate"; "ckpt-flip"; "ckpt-stale" ]

(* --- the pipeline under chaos --- *)

let chaos_trace = Util.random_trace (Rng.create 42) ~n:12 ~m:80 ~horizon:200
let grid = [| 1.; 5.; 20.; 50.; 100.; 200. |]

let curves_equal (a : Delay_cdf.curves) (b : Delay_cdf.curves) =
  a.grid = b.grid && a.hop_success = b.hop_success && a.hop_success_inf = b.hop_success_inf
  && a.flood_success = b.flood_success && a.flood_success_inf = b.flood_success_inf
  && a.max_rounds_used = b.max_rounds_used

let degraded_bit_identity () =
  Fun.protect ~finally:(fun () -> S.set_task_fault None) @@ fun () ->
  let poisoned = [ 2; 9 ] and flaky = [ 4 ] in
  S.set_task_fault
    (Some
       (fun ~item ~attempt ->
         if List.mem item poisoned then failwith "poison"
         else if List.mem item flaky && attempt = 0 then failwith "flaky"));
  let n = Trace.n_nodes chaos_trace in
  let survivors =
    List.filter
      (fun s -> not (List.mem s poisoned))
      (Delay_cdf.uniform_order (List.init n Fun.id))
  in
  let reference = Delay_cdf.compute ~max_hops:3 ~grid ~sources:survivors chaos_trace in
  List.iter
    (fun domains ->
      let curves, p =
        get_ok (Delay_cdf.compute_resumable ~max_hops:3 ~grid ~domains ~supervise:fast chaos_trace)
      in
      let at = Printf.sprintf "at %d domains" domains in
      Alcotest.(check bool) ("complete " ^ at) false p.Delay_cdf.partial;
      Alcotest.(check int) "every source accounted for" n p.Delay_cdf.sources_done;
      Alcotest.(check (list int)) ("quarantine exact " ^ at) (List.sort compare poisoned)
        (List.sort compare (List.map (fun (f : S.failure) -> f.S.item) p.Delay_cdf.degraded));
      Alcotest.(check bool) ("surviving results bit-identical " ^ at) true
        (curves_equal curves reference))
    [ 1; 2; 3 ]

let quarantine_off_propagates () =
  Fun.protect ~finally:(fun () -> S.set_task_fault None) @@ fun () ->
  S.set_task_fault (Some (fun ~item ~attempt:_ -> if item = 5 then failwith "poison"));
  let policy = { fast with S.retries = 1; quarantine = false } in
  match Delay_cdf.compute_resumable ~max_hops:3 ~grid ~supervise:policy chaos_trace with
  | Error (e : Err.t) -> Alcotest.(check bool) "typed failure" true (e.Err.code = Err.Compute)
  | Ok _ -> Alcotest.fail "quarantine=false must abort the run"

let degraded_survives_resume () =
  Fun.protect ~finally:(fun () -> S.set_task_fault None) @@ fun () ->
  S.set_task_fault (Some (fun ~item ~attempt:_ -> if item = 7 then failwith "poison"));
  with_ckpt @@ fun path ->
  let policy = { fast with S.retries = 1 } in
  let step () =
    Delay_cdf.compute_resumable ~max_hops:3 ~grid ~checkpoint_every:4 ~checkpoint:path
      ~resume:true ~budget_seconds:0. ~supervise:policy chaos_trace
  in
  let rec drive n =
    if n > 10 then Alcotest.fail "resumed run did not converge";
    let _, p = get_ok (step ()) in
    if p.Delay_cdf.partial then drive (n + 1) else p
  in
  let p = drive 0 in
  Alcotest.(check (list int)) "quarantine list survives kill/restart" [ 7 ]
    (List.map (fun (f : S.failure) -> f.S.item) p.Delay_cdf.degraded)

let ckpt_fallback_recovers () =
  with_ckpt @@ fun path ->
  let step ?budget_seconds ~resume () =
    Delay_cdf.compute_resumable ~max_hops:3 ~grid ~checkpoint_every:3 ~checkpoint:path ~resume
      ?budget_seconds chaos_trace
  in
  ignore (get_ok (step ~budget_seconds:0. ~resume:false ()));
  ignore (get_ok (step ~budget_seconds:0. ~resume:true ()));
  (* two generations on disk; corrupt the current one *)
  flip_file path;
  let curves, p = get_ok (step ~resume:true ()) in
  Alcotest.(check bool) "fallback reported" true p.Delay_cdf.ckpt_fallback;
  Alcotest.(check bool) "run completed" false p.Delay_cdf.partial;
  let reference, p0 = get_ok (Delay_cdf.compute_resumable ~max_hops:3 ~grid chaos_trace) in
  Alcotest.(check bool) "clean run reports no fallback" false p0.Delay_cdf.ckpt_fallback;
  Alcotest.(check bool) "post-fallback curves bit-identical" true (curves_equal curves reference);
  Alcotest.(check bool) "both generations removed on completion" false
    (Sys.file_exists path || Sys.file_exists (Checkpoint.prev_path path))

let diameter_threads_resilience () =
  Fun.protect ~finally:(fun () -> S.set_task_fault None) @@ fun () ->
  S.set_task_fault (Some (fun ~item ~attempt:_ -> if item = 3 then failwith "poison"));
  let run =
    get_ok (Diameter.measure_resumable ~max_hops:3 ~grid ~supervise:fast chaos_trace)
  in
  Alcotest.(check (list int)) "degraded surfaces in Diameter.run" [ 3 ]
    (List.map (fun (f : S.failure) -> f.S.item) run.Diameter.degraded);
  Alcotest.(check bool) "no fallback on a clean run" false run.Diameter.ckpt_fallback;
  S.set_task_fault None;
  let clean = get_ok (Diameter.measure_resumable ~max_hops:3 ~grid chaos_trace) in
  Alcotest.(check (list int)) "clean run has no degraded sources" []
    (List.map (fun (f : S.failure) -> f.S.item) clean.Diameter.degraded)

let metrics_flow () =
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      S.set_task_fault None;
      RI.set_inject None;
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  Metrics.reset ();
  S.set_task_fault
    (Some
       (fun ~item ~attempt ->
         if item = 1 then failwith "poison"
         else if item = 2 && attempt = 0 then failwith "flaky"));
  let _ =
    S.map ~sleep:no_sleep ~id:(fun x -> x) { fast with S.retries = 1 } Fun.id [| 0; 1; 2; 3 |]
  in
  let total name =
    Option.value ~default:0 (Metrics.counter_total (Metrics.snapshot ()) name)
  in
  Alcotest.(check bool) "retries counted" true (total "supervise.retries" >= 1);
  Alcotest.(check bool) "failures counted" true (total "supervise.task_failures" >= 2);
  Alcotest.(check int) "quarantines counted" 1 (total "supervise.quarantined");
  S.set_task_fault None;
  (* injected I/O retries flow into resilience.io_retries *)
  let path = Filename.temp_file "omn_metrics" ".txt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  RI.write_string path "x";
  let fails = Atomic.make 1 in
  RI.set_inject
    (Some
       (fun ~op ~path:_ ->
         if op = "read" && Atomic.fetch_and_add fails (-1) > 0 then raise (RI.Injected "io")));
  ignore (RI.read_to_string path);
  RI.set_inject None;
  Alcotest.(check bool) "io retries counted" true (total "resilience.io_retries" >= 1)

(* Random fault schedules (property): a run that is repeatedly killed
   (budget-expired), resumed, and occasionally hit by checkpoint
   corruption never loses acknowledged progress beyond one generation,
   never double-counts a source, and always converges to the exact
   fault-free result. *)
let prop_random_fault_schedules =
  QCheck2.Test.make ~count:25 ~name:"kill/corrupt schedules: no lost progress, no double count"
    QCheck2.Gen.(pair small_nat (list_size (int_range 0 10) (int_range 0 2)))
    (fun (tseed, events) ->
      let trace = Util.random_trace (Rng.create (1 + tseed)) ~n:10 ~m:60 ~horizon:120 in
      let grid = [| 1.; 5.; 20.; 60.; 120. |] in
      let chunk = 3 in
      let reference, _ =
        match Delay_cdf.compute_resumable ~max_hops:3 ~grid ~checkpoint_every:chunk trace with
        | Ok v -> v
        | Error e -> QCheck2.Test.fail_reportf "reference failed: %s" (Err.to_string e)
      in
      let path = Filename.temp_file "omn_prop" ".ckpt" in
      Sys.remove path;
      Fun.protect ~finally:(fun () -> Checkpoint.remove path) @@ fun () ->
      let step () =
        match
          Delay_cdf.compute_resumable ~max_hops:3 ~grid ~checkpoint_every:chunk
            ~checkpoint:path ~resume:true ~budget_seconds:0. trace
        with
        | Ok v -> v
        | Error e -> QCheck2.Test.fail_reportf "step failed: %s" (Err.to_string e)
      in
      let last_done = ref 0 in
      let rec drive events guard =
        if guard > 50 then QCheck2.Test.fail_report "schedule did not converge";
        let curves, p = step () in
        let d = p.Delay_cdf.sources_done in
        if d > p.Delay_cdf.sources_total then
          QCheck2.Test.fail_reportf "double-counted: %d of %d" d p.Delay_cdf.sources_total;
        (* a fallback re-does at most one chunk of acknowledged work *)
        if d < !last_done - chunk then
          QCheck2.Test.fail_reportf "lost progress: %d after %d" d !last_done;
        last_done := d;
        if not p.Delay_cdf.partial then begin
          if d <> p.Delay_cdf.sources_total then
            QCheck2.Test.fail_report "completed without covering every source";
          curves
        end
        else begin
          (match events with
          | 1 :: _ when Sys.file_exists (Checkpoint.prev_path path) ->
            (* corrupt the current generation; resume must fall back *)
            flip_file ~seed:tseed path
          | 2 :: _ when Sys.file_exists (Checkpoint.prev_path path) ->
            (* corrupt the previous generation; current must still load *)
            flip_file ~seed:tseed (Checkpoint.prev_path path)
          | _ -> (* clean kill/restart *) ());
          drive (match events with [] -> [] | _ :: rest -> rest) (guard + 1)
        end
      in
      let final = drive events 0 in
      curves_equal final reference)

let suite =
  [
    Alcotest.test_case "backoff deterministic, jittered, capped" `Quick backoff_deterministic;
    Alcotest.test_case "run_task retries then succeeds" `Quick run_task_retries_then_succeeds;
    Alcotest.test_case "run_task quarantines / re-raises" `Quick run_task_quarantines;
    Alcotest.test_case "task deadline and give_up" `Quick run_task_deadlines;
    Alcotest.test_case "run deadline stops retrying" `Quick map_run_deadline;
    Alcotest.test_case "supervised map keeps slot identity" `Quick supervised_map_bit_identity;
    Alcotest.test_case "task-fault hook targets items" `Quick task_fault_hook_targets_items;
    Alcotest.test_case "transient error classification" `Quick transient_classification;
    Alcotest.test_case "retry_io recovers from injected faults" `Quick retry_io_injected_faults;
    Alcotest.test_case "checkpoint CRC catches flip/truncate" `Quick
      checkpoint_roundtrip_and_corruption;
    Alcotest.test_case "stale fault passes CRC (fingerprint's job)" `Quick
      checkpoint_stale_passes_crc;
    Alcotest.test_case "rotation falls back, never promotes corrupt" `Quick
      checkpoint_rotation_fallback;
    Alcotest.test_case "validate rejection falls back" `Quick
      checkpoint_validate_rejection_falls_back;
    Alcotest.test_case "faultgen checkpoint faults" `Quick faultgen_ckpt_faults;
    Alcotest.test_case "degraded run: exact quarantine, bit-identical rest" `Quick
      degraded_bit_identity;
    Alcotest.test_case "quarantine off aborts the run" `Quick quarantine_off_propagates;
    Alcotest.test_case "degraded list survives kill/restart" `Quick degraded_survives_resume;
    Alcotest.test_case "corrupt checkpoint falls back to .prev" `Quick ckpt_fallback_recovers;
    Alcotest.test_case "diameter threads resilience through" `Quick diameter_threads_resilience;
    Alcotest.test_case "retry/fault/fallback counts reach metrics" `Quick metrics_flow;
    QCheck_alcotest.to_alcotest prop_random_fault_schedules;
  ]
