.PHONY: all build test bench timing doc clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

timing:
	dune exec bench/main.exe -- --timing

doc:
	dune build @doc

clean:
	dune clean
