.PHONY: all build test check smoke bench timing doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full gate: build, unit/property tests, and an end-to-end smoke test
# of the fault-injection + lenient ingestion + checkpoint paths.
check: build
	dune runtest
	$(MAKE) smoke

smoke: build
	sh scripts/smoke.sh

bench:
	dune exec bench/main.exe

timing:
	dune exec bench/main.exe -- --timing

doc:
	dune build @doc

clean:
	dune clean
